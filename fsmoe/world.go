package fsmoe

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/moe"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Executable-runtime vocabulary.
type (
	// WorldCache carries a World forward pass's state to Backward.
	WorldCache = moe.WorldCache
	// StreamPlan is an executable stream schedule (simulate or execute).
	StreamPlan = runtime.Plan
	// Trace is a stream timeline, simulated or measured.
	Trace = sim.Trace
	// A2AKind names an AlltoAll algorithm for the executable world.
	A2AKind = comm.A2AAlgo
	// CommStats is cumulative collective traffic.
	CommStats = comm.Stats
	// Strategy names a parallel execution scheme for the executable world.
	Strategy = moe.Strategy
	// ShardedExpert is the expert contract StrategyESP requires: GEMM
	// stages sharded over hidden columns and token rows so a shard group
	// can split one expert's compute bit-exactly (see moe.ShardedExpert).
	// The built-in GPT and Mixtral experts implement it.
	ShardedExpert = moe.ShardedExpert
	// DenseRouter marks custom gates whose plans route densely
	// (SoftMoE-style); StrategyAuto uses it to pick StrategyDenseSlots.
	DenseRouter = moe.DenseRouter

	// FaultSpec configures the deterministic seeded fault injector:
	// per-task-kind / per-stream transient probabilities, straggler delays,
	// in-collective failures and permanent rank-down events.
	FaultSpec = fault.Spec
	// FaultPlan is a compiled injector; install it with World.SetFaultPlan.
	FaultPlan = fault.Plan
	// FaultDown configures a permanent rank-down event inside a FaultSpec.
	FaultDown = fault.Down
	// RetryPolicy bounds transient-fault retries with exponential backoff
	// and deterministic jitter.
	RetryPolicy = runtime.RetryPolicy
	// DegradedResult reports how a pass survived a permanent rank failure.
	DegradedResult = moe.DegradedResult
	// TraceEvent is one fault/retry/straggler/skip incident on a measured
	// trace (Trace.Events).
	TraceEvent = sim.Event
)

// ErrWorldClosed reports use of a World after Close (errors.Is-matchable).
var ErrWorldClosed = moe.ErrWorldClosed

// NewFaultPlan compiles a FaultSpec into an installable injector. Every
// decision it makes is a pure function of the seed and the task identity,
// so a chaos run is reproducible under any stream interleaving.
func NewFaultPlan(s FaultSpec) *FaultPlan { return fault.New(s) }

// IsTransient and IsPermanent classify (possibly wrapped) injected faults:
// transient failures fire before any buffer mutation and are retried
// bit-safely; permanent ones mark a rank dead.
func IsTransient(err error) bool { return fault.IsTransient(err) }
func IsPermanent(err error) bool { return fault.IsPermanent(err) }

// SetVerifyPlans toggles static verification (runtime.Plan.Verify) of
// every stream plan a World builds, process-wide: with the flag on, a
// malformed schedule — out-of-range or cyclic dependencies, an undeclared
// stream, a non-canonical task kind, a negative estimate — fails fast at
// construction with a named error instead of deadlocking or silently
// mis-aggregating mid-run. Off by default; tests and benchmarks turn it
// on.
func SetVerifyPlans(on bool) { moe.SetVerifyPlans(on) }

// Trace event types recorded on measured traces during fault injection.
const (
	EventFault     = sim.EventFault
	EventRetry     = sim.EventRetry
	EventStraggler = sim.EventStraggler
	EventSkip      = sim.EventSkip
)

// Task kinds as they appear on stream plans — the keys a
// FaultSpec.KindProb targets and a RetryPolicy.Kinds allows.
const (
	KindAlltoAll      = moe.KindA2A
	KindAllGather     = moe.KindAG
	KindReduceScatter = moe.KindRS
	KindExperts       = moe.KindExpert
	KindPack          = moe.KindPack
	KindOthers        = sim.KindOthers
)

// The three AlltoAll algorithms of §3.1's Dispatch sub-module.
const (
	A2ADirect = comm.A2ADirect
	A2A1DH    = comm.A2A1DH
	A2A2DH    = comm.A2A2DH
)

// The parallel strategies of the generalized MoE layer (§4): how one
// layer's work is split across the world's ranks.
const (
	// StrategyAuto (the zero value) picks a strategy from the layer:
	// dense-routing gates get StrategyDenseSlots, and hard-routing layers
	// with sharded experts run the 2-D Algorithm-1 grid over
	// (group size × pipeline degree) on the testbed's performance models —
	// the grid's g=1 edge is pure EP, its g=Ranks edge pure ESP, and an
	// interior winner selects StrategyHybrid with that GroupSize. Layers
	// with non-sharded experts always get StrategyEP.
	StrategyAuto Strategy = ""
	// StrategyEP is pure expert parallelism: experts sharded across ranks,
	// tokens moved by r-chunked dispatch/combine AlltoAll.
	StrategyEP = moe.StrategyEP
	// StrategyESP is expert-sharding parallelism: every rank computes a
	// shard of every expert, with chunked AllGather/ReduceScatter stages
	// on the shared intra stream.
	StrategyESP = moe.StrategyESP
	// StrategyHybrid nests the two: the world splits into Ranks/GroupSize
	// EP groups of GroupSize ESP shard members each. Dispatch/combine
	// AlltoAll runs between groups on the inter stream while each group's
	// AllGather/ReduceScatter stages run on a per-group intra stream, so
	// the group size trades inter-node AlltoAll volume against in-group
	// collective volume. GroupSize=1 degenerates to EP, GroupSize=Ranks
	// to ESP (the runtime delegates, so the edges are the pure strategies
	// exactly). Requires every expert to implement ShardedExpert.
	StrategyHybrid = moe.StrategyHybrid
	// StrategyDenseSlots runs dense (SoftMoE) plans through the EP
	// pipeline chunked over expert slots instead of token rows.
	StrategyDenseSlots = moe.StrategyDenseSlots
)

// WorldConfig configures multi-rank pipelined execution of a Layer.
//
// Strategy selects the parallel scheme; the zero value is StrategyAuto.
// PipelineDegree selects the number of chunks r each collective chain is
// split into. Zero means automatic: Algorithm 1 (§4.4) runs on the
// testbed's fitted performance models with volumes derived from the
// layer's real shape, BatchTokens and the chosen strategy, separately per
// phase — the chosen degrees are what actually execute, closing the loop
// between the scheduler and the runtime.
type WorldConfig struct {
	Ranks             int      // R; how the layer is sharded depends on Strategy
	PipelineDegree    int      // forward r; 0 = Algorithm 1
	PipelineDegreeBwd int      // backward r; 0 inherits (auto mode optimizes it separately)
	Algo              A2AKind  // AlltoAll algorithm for EP/DenseSlots (default Direct)
	GPUsPerNode       int      // node shape for 1DH/2DH and ring Stats (default Ranks)
	Strategy          Strategy // parallel scheme (default StrategyAuto)

	// GroupSize is the EP-group size for StrategyHybrid: it must divide
	// Ranks, with 1 ≡ pure EP and Ranks ≡ pure ESP. Zero with an explicit
	// StrategyHybrid means automatic: the 2-D Algorithm-1 grid picks the
	// group size over the divisors of Ranks along with the pipeline
	// degrees. Ignored by the other strategies.
	GroupSize int

	// Inputs to StrategyAuto and the automatic pipeline degrees.
	Cluster     *Cluster // testbed whose models drive Algorithm 1 (default TestbedA)
	BatchTokens int      // B·L tokens per iteration (default 4096)

	// Calibration, when non-nil, replaces the testbed models with cost
	// coefficients fitted from this machine's measured stage times (see
	// Calibrate): StrategyAuto and the automatic pipeline degrees then run
	// Algorithm 1 on what was measured instead of on testbed constants,
	// closing the scheduler→runtime loop in both directions. Explicit
	// Strategy/PipelineDegree settings still win.
	Calibration *Calibration

	// Sink, when non-nil, receives one StepMetrics per completed training
	// step (Step/StepStack) and the record is attached to
	// StepResult.Metrics. Nil disables per-step telemetry at zero cost to
	// the step path.
	Sink Sink
}

// World executes a Layer across in-process ranks under a pluggable
// parallel strategy, with chunked collectives pipelined on real streams.
// Forward and Backward are bit-identical to the Layer's single-rank path
// under every strategy.
type World struct {
	inner      *moe.World
	degF, degB core.DegreeResult
	auto       bool
	autoStrat  bool
}

// NewWorld builds the executable multi-rank runtime for a layer.
func NewWorld(l *Layer, cfg WorldConfig) (*World, error) {
	if l == nil {
		return nil, fmt.Errorf("fsmoe: NewWorld needs a layer")
	}
	w := &World{}
	cluster := cfg.Cluster
	if cluster == nil {
		cluster = topology.TestbedA()
	}
	tokens := cfg.BatchTokens
	if tokens <= 0 {
		tokens = 4096
	}
	m := core.ModelsFromCluster(cluster)
	// The volume space Algorithm 1 runs in: testbed-modelled volumes by
	// default; when a Calibration is supplied, its measured models and the
	// matching measured volumes (both in the plan's own estimate units, so
	// they stay consistent with each other).
	volsFor := func(s Strategy) (core.Volumes, bool) { return layerVolumes(l, tokens, s), true }
	hybridFor := func(g int) (core.Volumes, bool) { return hybridLayerVolumes(l, tokens, cfg.Ranks, g), true }
	if cfg.Calibration != nil {
		m = cfg.Calibration.models
		volsFor = cfg.Calibration.volumes
		hybridFor = cfg.Calibration.hybridVolumes
	}

	strat := cfg.Strategy
	groupSize := cfg.GroupSize
	var autoDegF, autoDegB core.DegreeResult
	haveDegrees := false
	if strat == StrategyAuto {
		strat, groupSize, autoDegF, autoDegB, haveDegrees = chooseStrategy(l, m, volsFor, hybridFor, cfg.Ranks)
		w.autoStrat = true
	} else if strat == StrategyHybrid && groupSize == 0 {
		// Explicit hybrid with an unset group size: the 2-D grid picks g
		// (and the per-phase degrees) over every divisor of the rank
		// count — including the degenerate edges, which the runtime
		// delegates to the pure strategies.
		groupSize, autoDegF, autoDegB, haveDegrees = hybridGroupPick(m, volsFor, hybridFor, cfg.Ranks)
		if !haveDegrees {
			groupSize = 1
		}
	}
	// The volume set of the configuration actually executing, hybrid
	// group size included.
	stratVols := func() (core.Volumes, bool) {
		if strat == StrategyHybrid {
			return gridVolumes(volsFor, hybridFor, cfg.Ranks, groupSize)
		}
		return volsFor(strat)
	}

	degF, degB := cfg.PipelineDegree, cfg.PipelineDegreeBwd
	if degF == 0 {
		w.auto = true
		if haveDegrees {
			// The strategy (or group-size) comparison already ran
			// Algorithm 1 on the winner's volumes; reuse its per-phase
			// results.
			w.degF, w.degB = autoDegF, autoDegB
		} else if v, ok := stratVols(); ok {
			w.degF = m.FindOptimalPipelineDegree(v, 0, core.Forward, 16)
			w.degB = m.FindOptimalPipelineDegree(v, 0, core.Backward, 16)
		} else {
			// The calibration never swept this strategy; fall back to the
			// testbed models on modelled volumes rather than mixing unit
			// spaces.
			tm := core.ModelsFromCluster(cluster)
			v := layerVolumes(l, tokens, strat)
			if strat == StrategyHybrid {
				v = hybridLayerVolumes(l, tokens, cfg.Ranks, groupSize)
			}
			w.degF = tm.FindOptimalPipelineDegree(v, 0, core.Forward, 16)
			w.degB = tm.FindOptimalPipelineDegree(v, 0, core.Backward, 16)
		}
		if cfg.Calibration != nil {
			// The calibrated closed form proposes; the measured sweep
			// disposes (see Calibration.PickDegree). R is what executes;
			// TMoE/Case keep the model's view of its own proposal.
			w.degF.R = cfg.Calibration.degreePick(strat, groupSize, w.degF.R)
			w.degB.R = cfg.Calibration.degreePick(strat, groupSize, w.degB.R)
		}
		degF = w.degF.R
		// An explicit backward degree overrides Algorithm 1's choice even
		// in auto mode.
		if degB == 0 {
			degB = w.degB.R
		}
	} else if degB == 0 {
		degB = degF
	}
	inner, err := moe.NewWorld(l.inner, moe.WorldConfig{
		Ranks:       cfg.Ranks,
		ChunksFwd:   degF,
		ChunksBwd:   degB,
		Algo:        cfg.Algo,
		GPUsPerNode: cfg.GPUsPerNode,
		Strategy:    strat,
		GroupSize:   groupSize,
		Sink:        cfg.Sink,
	})
	if err != nil {
		return nil, err
	}
	w.inner = inner
	return w, nil
}

// chooseStrategy is StrategyAuto: dense routers shard over slots; hard
// routers with non-sharded experts get EP; fully-sharded layers run the
// 2-D Algorithm-1 grid over (group size × degree), whose g=1 and g=Ranks
// edges carry the pure EP and ESP volume sets — so the old EP-vs-ESP
// comparison is this grid restricted to its edges, and an interior winner
// selects StrategyHybrid with its group size. volsFor/hybridFor supply the
// volume sets — testbed-modelled or calibration-measured; a cell whose
// volumes are unavailable (a calibration that never swept it) is not
// eligible. When the grid ran, the winner's per-phase degree results are
// returned for reuse (haveDegrees true), saving the caller an identical
// pair of searches.
func chooseStrategy(l *Layer, m core.Models, volsFor func(Strategy) (core.Volumes, bool), hybridFor func(int) (core.Volumes, bool), ranks int) (strat Strategy, groupSize int, degF, degB core.DegreeResult, haveDegrees bool) {
	if dr, ok := l.inner.Gate().(moe.DenseRouter); ok && dr.DenseRouting() {
		return StrategyDenseSlots, 0, degF, degB, false
	}
	for _, ex := range l.inner.Experts() {
		if _, ok := ex.(moe.ShardedExpert); !ok {
			return StrategyEP, 0, degF, degB, false
		}
	}
	g, f, b, ok := hybridGroupPick(m, volsFor, hybridFor, ranks)
	if !ok {
		return StrategyEP, 0, degF, degB, false
	}
	switch g {
	case 1:
		return StrategyEP, 0, f, b, true
	case ranks:
		return StrategyESP, 0, f, b, true
	}
	return StrategyHybrid, g, f, b, true
}

// hybridGroupPick scans the (group size × degree) grid: for each divisor
// g of the rank count it runs Algorithm 1 per phase on that cell's
// volumes, and picks the g minimizing the summed forward+backward
// predicted time — one g must serve both phases, while the degrees stay
// per-phase (§4.4). Cells without volumes are skipped; ok is false when
// none had any.
func hybridGroupPick(m core.Models, volsFor func(Strategy) (core.Volumes, bool), hybridFor func(int) (core.Volumes, bool), ranks int) (groupSize int, degF, degB core.DegreeResult, ok bool) {
	for _, g := range divisors(ranks) {
		v, have := gridVolumes(volsFor, hybridFor, ranks, g)
		if !have {
			continue
		}
		f, b := phaseDegrees(m, v)
		if !ok || f.TMoE+b.TMoE < degF.TMoE+degB.TMoE {
			groupSize, degF, degB, ok = g, f, b, true
		}
	}
	return groupSize, degF, degB, ok
}

// gridVolumes maps a grid cell to its volume set: the degenerate edges
// reuse the pure strategies' volumes, so the grid coincides with the 1-D
// strategy comparison there — exactly as the runtime delegates those
// group sizes to the pure strategies.
func gridVolumes(volsFor func(Strategy) (core.Volumes, bool), hybridFor func(int) (core.Volumes, bool), ranks, g int) (core.Volumes, bool) {
	switch g {
	case 1:
		return volsFor(StrategyEP)
	case ranks:
		return volsFor(StrategyESP)
	}
	return hybridFor(g)
}

// divisors returns the divisors of n in ascending order — the candidate
// hybrid group sizes of an n-rank world.
func divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// phaseDegrees runs Algorithm 1 for both phases on one volume set.
func phaseDegrees(m core.Models, v Volumes) (f, b core.DegreeResult) {
	f = m.FindOptimalPipelineDegree(v, 0, core.Forward, 16)
	b = m.FindOptimalPipelineDegree(v, 0, core.Backward, 16)
	return f, b
}

// layerVolumes derives Algorithm-1 scheduling volumes from the real layer
// under one strategy: the strategy decides which collectives carry the
// dispatched activations — EP and DenseSlots move them twice over the
// AlltoAll links, ESP moves them through the AllGather/ReduceScatter
// stages plus the hidden-activation exchange — and expert MACs / gradient
// bytes come from the live expert implementations, so custom experts
// steer the choice through their own FwdMACs/ParamBytes/HiddenWidth.
func layerVolumes(l *Layer, tokens int, strat Strategy) Volumes {
	cfg := l.cfg
	effF := cfg.CapacityFactor
	if effF <= 0 {
		effF = 1.0
	}
	k := cfg.TopK
	if k < 1 {
		k = 1
	}
	experts := l.inner.Experts()
	dispatched := float64(k) * effF * float64(tokens)
	if strat == StrategyDenseSlots {
		// Dense plans dispatch E·slotsPerExpert slot rows, independent of
		// the token count.
		slots := cfg.SlotsPerExpert
		if slots < 1 {
			slots = 1
		}
		dispatched = float64(len(experts) * slots)
	}
	wire := dispatched * float64(cfg.M) * workload.ActivationBytes
	perExpert := int(dispatched) / len(experts)
	if perExpert < 1 {
		perExpert = 1
	}
	macs, gradBytes, hidden := 0.0, 0.0, 0.0
	for _, e := range experts {
		macs += e.FwdMACs(perExpert)
		gradBytes += e.ParamBytes()
		if se, ok := e.(moe.ShardedExpert); ok {
			// One Volumes set feeds both phases' degree searches, so the
			// hidden exchange is averaged over the forward and backward
			// band counts (Mixtral exchanges two backward bands).
			hidden += float64(se.HiddenWidth()) * float64(se.FwdBands()+se.BwdBands()) / 2
		}
	}
	hiddenWire := hidden / float64(len(experts)) * dispatched * workload.ActivationBytes
	gemms := 2
	if cfg.Expert == ExpertMixtral {
		gemms = 3
	}
	v := Volumes{
		ExpMACs:  macs,
		ExpGEMMs: gemms,
		// The dense part is outside the World's pipeline; a nominal floor
		// keeps the volumes valid for full-iteration simulations.
		DenseFwd:  0.1,
		DenseBwd:  0.2,
		GradBytes: gradBytes,
	}
	if strat == StrategyESP {
		// Two gather stages (inputs, then hidden activations) and the
		// output ReduceScatter; no AlltoAll at all.
		v.NAG = wire + hiddenWire
		v.NRS = wire
	} else {
		v.NA2A = wire
	}
	return v
}

// hybridLayerVolumes derives the volumes of one hybrid grid cell. The
// degenerate group sizes return the pure strategies' volume sets exactly
// (the runtime delegates those cells, so the grid's edges must coincide
// with the 1-D comparisons). Interior cells interpolate: with lanes of
// R/g ranks, the fraction of dispatched rows crossing lanes is 1-g/R,
// normalized by EP's 1-1/R so g=1 recovers EP's convention; the in-group
// AllGather/ReduceScatter traffic carries the ring factor (g-1)/g,
// normalized by ESP's (R-1)/R so g=R recovers ESP's. Larger groups thus
// trade AlltoAll volume for in-group collective volume — the axis the
// 2-D grid optimizes.
func hybridLayerVolumes(l *Layer, tokens, ranks, g int) Volumes {
	if g <= 1 || ranks <= 1 {
		return layerVolumes(l, tokens, StrategyEP)
	}
	if g >= ranks {
		return layerVolumes(l, tokens, StrategyESP)
	}
	ep := layerVolumes(l, tokens, StrategyEP)
	esp := layerVolumes(l, tokens, StrategyESP)
	rf, gf := float64(ranks), float64(g)
	ring := ((gf - 1) / gf) / ((rf - 1) / rf)
	v := ep
	v.NA2A = ep.NA2A * (rf - gf) / (rf - 1)
	v.NAG = esp.NAG * ring
	v.NRS = esp.NRS * ring
	return v
}

// Forward runs the pipelined multi-rank forward pass on x, shaped
// (B, L, M) or (N, M).
func (w *World) Forward(x *Tensor, train bool) (*Tensor, *WorldCache, error) {
	return w.inner.Forward(x, train)
}

// Backward runs the pipelined multi-rank backward pass.
func (w *World) Backward(cache *WorldCache, dy *Tensor) (*Tensor, error) {
	return w.inner.Backward(cache, dy)
}

// Ranks returns R; Chunked reports whether the fine-grained expert path
// is active (custom experts without the chunked contract fall back to
// whole-block compute with chunked communication under EP/DenseSlots).
func (w *World) Ranks() int    { return w.inner.Ranks() }
func (w *World) Chunked() bool { return w.inner.Chunked() }

// Strategy returns the parallel scheme in effect; AutoStrategy reports
// whether it was chosen automatically.
func (w *World) Strategy() Strategy { return w.inner.Strategy() }
func (w *World) AutoStrategy() bool { return w.autoStrat }

// GroupSize returns the hybrid EP-group size in effect (0 unless the
// strategy is StrategyHybrid), whether configured or grid-chosen.
func (w *World) GroupSize() int { return w.inner.GroupSize() }

// PipelineDegrees returns the forward and backward chunk counts in effect.
func (w *World) PipelineDegrees() (fwd, bwd int) { return w.inner.Degrees() }

// DegreeResults returns Algorithm 1's full forward/backward outcomes when
// the degrees were chosen automatically (zero values otherwise).
func (w *World) DegreeResults() (fwd, bwd DegreeResult) { return w.degF, w.degB }

// AutoDegree reports whether Algorithm 1 chose the degrees.
func (w *World) AutoDegree() bool { return w.auto }

// SetSequential switches between the pipelined stream executor (default)
// and a single-goroutine no-overlap baseline; results are identical.
func (w *World) SetSequential(seq bool) { w.inner.SetSequential(seq) }

// SetScopedPools toggles resource governance (default on): each compute
// stream runs on an OS-thread-pinned goroutine with its own scoped tensor
// worker pool, and communication staging shares a small dedicated
// allotment. Off reverts every kernel to the shared process-wide pool —
// the oversubscription baseline. Results are identical either way; only
// contention differs. LastTrace().Resources reports the binding a
// measured pass actually ran under.
func (w *World) SetScopedPools(on bool) { w.inner.SetScopedPools(on) }

// ResourcePlan reports the planned per-stream worker split: workers per
// compute stream and the shared communication allotment.
func (w *World) ResourcePlan() (computeWorkers, commWorkers int) { return w.inner.ResourcePlan() }

// Close releases the scoped pools' worker goroutines and retires the
// world. A second Close, or a Forward/Backward after Close, fails with
// ErrWorldClosed.
func (w *World) Close() error { return w.inner.Close() }

// SetFaultPlan installs (or, with nil, removes) a seeded fault injector;
// it drives task-level and in-collective injection from the next Forward.
func (w *World) SetFaultPlan(fp *FaultPlan) { w.inner.SetFaultPlan(fp) }

// SetRetry replaces the default transient-retry policy (4 attempts,
// exponential backoff with jitter, collective task kinds only).
func (w *World) SetRetry(rp RetryPolicy) { w.inner.SetRetry(rp) }

// SetDeadline bounds each pass's plan execution: on expiry the streams
// cancel cooperatively (and drain leak-free) and the pass fails with
// context.DeadlineExceeded in its joined error. Zero removes the deadline.
func (w *World) SetDeadline(d time.Duration) { w.inner.SetDeadline(d) }

// Health reports per-rank health (false = permanently failed). ResetHealth
// restores full strength after a rank-down, modelling the failed worker's
// replacement; dead experts kept zero gradients while degraded, so their
// parameters resume unchanged.
func (w *World) Health() []bool { return w.inner.Health() }
func (w *World) ResetHealth()   { w.inner.ResetHealth() }

// LastDegraded returns the degraded-mode report of the most recent pass
// (nil when it ran at full strength): which experts were lost, tokens
// re-routed or dropped, retries spent, and the recovery-time tail.
func (w *World) LastDegraded() *DegradedResult { return w.inner.LastDegraded() }

// Stats returns cumulative collective traffic across passes.
func (w *World) Stats() CommStats { return w.inner.Stats() }

// LastPlan and LastTrace expose the most recent pass's stream plan and
// measured timeline: LastTrace().Gantt(120) renders the measured Fig. 3,
// and LastPlan().SimulateWith(...) predicts alternative schedules from
// measured stage durations.
func (w *World) LastPlan() *StreamPlan { return w.inner.LastPlan() }
func (w *World) LastTrace() *Trace     { return w.inner.LastTrace() }

package fsmoe

// Measured-cost calibration: the workflow that closes the Algorithm-1 loop
// on this machine instead of on testbed constants. Calibrate runs a short
// realpipe sweep — one measured sequential and one measured pipelined
// forward+backward pass of the executable World per strategy × pipeline
// degree — and least-squares-fits the §4.1 linear cost models
// (t = α + β·n per task kind) from the measured stage times, pairing each
// task's wall-clock duration with the volume estimate its plan carried.
// The fitted models live in the plans' own estimate units, and so do the
// per-strategy volume sets Calibrate extracts from the same plans, so the
// two sides of Algorithm 1 stay consistent by construction: feeding a
// *Calibration into WorldConfig.Calibration makes StrategyAuto and the
// automatic pipeline degrees optimize against what this machine actually
// did, the way auto-degrees already close their loop against what actually
// executes.

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/moe"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// Fitted is a calibrated linear cost model with its goodness of fit.
type Fitted = perfmodel.Fitted

// CalibrateConfig shapes the calibration sweep. The zero value measures at
// R=4 ranks, 1024 tokens, degrees {1, 2, 4, 8}, and every strategy the
// layer supports.
type CalibrateConfig struct {
	Ranks      int        // in-process world size (default 4)
	Tokens     int        // tokens per measured pass (default 1024)
	Degrees    []int      // pipeline degrees to sweep (default 1, 2, 4, 8)
	Strategies []Strategy // strategies to sweep (default: all the layer supports)
	Seed       uint64     // input/output-gradient seed (default 7)
}

// CalibrationPoint is one measured sweep cell: a (strategy, degree) pair's
// sequential baseline, the discrete-event prediction of the pipelined
// makespan from the measured sequential stage times (Plan.SimulateWith),
// and the measured pipelined execution. StrategyHybrid cells additionally
// carry their EP-group size, so the hybrid sweep is 2-D over
// (GroupSize, Degree); GroupSize is 0 for every other strategy. Pred vs
// Pipe is the §4 fidelity check; Pipe across degrees is the measured
// optimum the calibrated Algorithm 1 is judged against.
type CalibrationPoint struct {
	Strategy  Strategy
	GroupSize int
	Degree    int
	SeqMS     float64
	PredMS    float64
	PipeMS    float64
}

// Calibration is a machine profile fitted from measured stage times.
type Calibration struct {
	Ranks  int
	Tokens int
	// Fits holds the per-kind cost models recovered from the sweep, keyed
	// by trace kind ("AlltoAll", "AllGather", "ReduceScatter", "Experts",
	// "AllReduce"), in plan-estimate units.
	Fits map[string]Fitted
	// Points holds every measured sweep cell in execution order.
	Points []CalibrationPoint

	models core.Models
	vols   map[Strategy]core.Volumes
	hvols  map[int]core.Volumes // hybrid volumes per swept group size
	gemms  int                  // GEMMs per expert forward (scales Algorithm 1's α_exp)
}

// kindSamples accumulates (volume estimate, measured ms) pairs per kind.
type kindSamples struct{ xs, ys []float64 }

// Calibrate measures the layer's executable pipeline on this machine and
// fits its cost coefficients; see the package note above for the loop it
// closes. It is deliberately a short sweep — a few forward+backward passes
// per (strategy, degree) — not a training run.
func Calibrate(l *Layer, cfg CalibrateConfig) (*Calibration, error) {
	if l == nil {
		return nil, fmt.Errorf("fsmoe: Calibrate needs a layer")
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 4
	}
	if cfg.Tokens <= 0 {
		cfg.Tokens = 1024
	}
	if len(cfg.Degrees) == 0 {
		cfg.Degrees = []int{1, 2, 4, 8}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = supportedStrategies(l)
	}

	cal := &Calibration{
		Ranks:  cfg.Ranks,
		Tokens: cfg.Tokens,
		Fits:   map[string]Fitted{},
		vols:   map[Strategy]core.Volumes{},
		hvols:  map[int]core.Volumes{},
		gemms:  2,
	}
	if l.cfg.Expert == ExpertMixtral {
		cal.gemms = 3
	}
	samples := map[string]*kindSamples{}
	x := RandTensor(cfg.Seed, cfg.Tokens, l.cfg.M)
	dy := RandTensor(cfg.Seed+1, cfg.Tokens, l.cfg.M)

	// Expand the strategy list into sweep cells: StrategyHybrid fans out
	// over the proper divisors of the rank count (its g=1 and g=Ranks
	// edges are the EP and ESP cells already swept), making the hybrid
	// part of the sweep 2-D over (group size × degree).
	type sweepCell struct {
		strat Strategy
		g     int
	}
	var cells []sweepCell
	for _, strat := range cfg.Strategies {
		if strat == StrategyHybrid {
			for _, g := range divisors(cfg.Ranks) {
				if g > 1 && g < cfg.Ranks {
					cells = append(cells, sweepCell{strat, g})
				}
			}
			continue
		}
		cells = append(cells, sweepCell{strat, 0})
	}

	for _, cell := range cells {
		strat := cell.strat
		for di, degree := range cfg.Degrees {
			w, err := NewWorld(l, WorldConfig{
				Ranks: cfg.Ranks, PipelineDegree: degree, Strategy: strat,
				GroupSize: cell.g, BatchTokens: cfg.Tokens,
			})
			if err != nil {
				return nil, fmt.Errorf("fsmoe: calibrate %s r=%d: %w", strat, degree, err)
			}
			// Warm the pools, free-lists and branch predictors off the record.
			if err := calibratePass(l, w, x, dy, nil); err != nil {
				w.Close()
				return nil, err
			}

			// Measured sequential pass: the per-task durations that feed both
			// the fits and the DES prediction of the pipelined makespan.
			w.SetSequential(true)
			var pt CalibrationPoint
			pt.Strategy, pt.GroupSize, pt.Degree = strat, cell.g, degree
			err = calibratePass(l, w, x, dy, func(p *StreamPlan, tr *Trace) {
				durations := runtime.Durations(tr)
				pt.SeqMS += tr.Makespan
				pt.PredMS += p.SimulateWith(durations).Makespan
				for _, ti := range p.Tasks() {
					if ti.Est <= 0 || ti.Kind == moe.KindPack {
						continue // Algorithm 1 has no pack term; zero-est tasks carry no volume
					}
					ks := samples[ti.Kind]
					if ks == nil {
						ks = &kindSamples{}
						samples[ti.Kind] = ks
					}
					ks.xs = append(ks.xs, ti.Est)
					ks.ys = append(ks.ys, durations[ti.ID])
				}
				if di == 0 {
					cal.accumulateVolumes(strat, cell.g, p)
				}
			})
			if err != nil {
				w.Close()
				return nil, err
			}

			// Measured pipelined pass of the same plan shape.
			w.SetSequential(false)
			err = calibratePass(l, w, x, dy, func(p *StreamPlan, tr *Trace) {
				pt.PipeMS += tr.Makespan
			})
			w.Close()
			if err != nil {
				return nil, err
			}
			cal.Points = append(cal.Points, pt)
		}
	}

	if err := cal.fit(samples); err != nil {
		return nil, err
	}
	cal.fitAllReduce(cfg.Ranks)
	return cal, nil
}

// supportedStrategies lists the strategies a layer can execute: dense
// routers run DenseSlots only; hard routers run EP, plus ESP and Hybrid
// when every expert implements the sharded contract (the hybrid sweep
// contributes cells only at rank counts with a proper divisor).
func supportedStrategies(l *Layer) []Strategy {
	if dr, ok := l.inner.Gate().(moe.DenseRouter); ok && dr.DenseRouting() {
		return []Strategy{StrategyDenseSlots}
	}
	out := []Strategy{StrategyEP}
	for _, ex := range l.inner.Experts() {
		if _, ok := ex.(moe.ShardedExpert); !ok {
			return out
		}
	}
	return append(out, StrategyESP, StrategyHybrid)
}

// calibratePass runs one forward+backward pair and hands each phase's plan
// and trace to observe (nil = warmup).
func calibratePass(l *Layer, w *World, x, dy *Tensor, observe func(*StreamPlan, *Trace)) error {
	l.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		return err
	}
	if observe != nil {
		observe(w.LastPlan(), w.LastTrace())
	}
	if _, err := w.Backward(cache, dy); err != nil {
		return err
	}
	if observe != nil {
		observe(w.LastPlan(), w.LastTrace())
	}
	return nil
}

// accumulateVolumes folds one plan's per-kind volume estimates into the
// sweep cell's Algorithm-1 volume set — keyed by strategy, or by group
// size for hybrid cells — in the same estimate units the fits use.
// Conventions mirror the closed forms of §4.2: NA2A is the volume of
// ONE AlltoAll direction (each pass runs two), expert volume is per rank
// (the model's t_exp is a per-rank pipeline stage; the estimate sum counts
// every rank), and each phase contributes half of the AG/RS totals (one
// volume set serves both phases' searches, as with the testbed path).
func (c *Calibration) accumulateVolumes(strat Strategy, g int, p *StreamPlan) {
	var a2a, ag, rs, exp float64
	for _, ti := range p.Tasks() {
		switch ti.Kind {
		case moe.KindA2A:
			a2a += ti.Est
		case moe.KindAG:
			ag += ti.Est
		case moe.KindRS:
			rs += ti.Est
		case moe.KindExpert:
			exp += ti.Est
		}
	}
	v := c.vols[strat]
	if strat == StrategyHybrid {
		v = c.hvols[g]
	}
	v.NA2A += a2a / 4 // two directions per pass × two phases
	v.NAG += ag / 2
	v.NRS += rs / 2
	// Forward contributes the forward expert volume; the backward plan's
	// expert estimates already carry the 2× convention Algorithm 1 applies
	// itself, so only the forward phase's sum defines ExpMACs. Phases are
	// distinguished by arrival order: forward first (exp yet unset).
	if v.ExpMACs == 0 {
		v.ExpMACs = exp / float64(c.Ranks)
	}
	if v.ExpGEMMs == 0 {
		v.ExpGEMMs = c.gemms
	}
	// Nominal floors for the dense part, matching layerVolumes: the World
	// pipeline does not execute the surrounding dense block.
	v.DenseFwd, v.DenseBwd = 0.1, 0.2
	if strat == StrategyHybrid {
		c.hvols[g] = v
		return
	}
	c.vols[strat] = v
}

// fit least-squares-fits each kind's samples.
func (c *Calibration) fit(samples map[string]*kindSamples) error {
	for kind, ks := range samples {
		f, err := perfmodel.Fit(ks.xs, ks.ys)
		if err != nil {
			// A single-degree sweep yields one distinct volume per kind, so
			// the two-parameter fit degenerates; recover the slope through
			// the origin rather than failing the calibration.
			f = proportionalFit(ks.xs, ks.ys)
			if f.N == 0 {
				return fmt.Errorf("fsmoe: calibrate: fitting %s from %d samples: %w", kind, len(ks.xs), err)
			}
		}
		// A fitted α can come out slightly negative on noisy tiny samples;
		// clamp so ChunkTime stays monotone and non-negative.
		if f.Alpha < 0 {
			f.Alpha = 0
		}
		if f.Beta < 0 {
			f.Beta = 0
		}
		c.Fits[kind] = f
	}
	a2a := c.Fits[moe.KindA2A].Linear
	c.models = core.Models{
		A2A:     a2a,
		A2AFlat: a2a,
		AG:      c.Fits[moe.KindAG].Linear,
		RS:      c.Fits[moe.KindRS].Linear,
		GEMM:    c.Fits[moe.KindExpert].Linear,
		// In-process execution has no separate fabric to contend on; the
		// measured stage times already include whatever contention exists.
		IIOContention: 0,
	}
	return nil
}

// proportionalFit is the α=0 fallback when every sample shares one volume:
// β = Σy/Σx, R² unreported (0).
func proportionalFit(xs, ys []float64) Fitted {
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	if sx <= 0 {
		return Fitted{}
	}
	return Fitted{Linear: perfmodel.Linear{Beta: sy / sx}, N: len(xs)}
}

// fitAllReduce profiles the §5 Gradient-AllReduce directly (the sweep's
// backward plans carry no AllReduce unless a gradient syncer is
// installed): a ring all-reduce microbenchmark across a few sizes, fitted
// in the fp32-byte convention GradBytes uses.
func (c *Calibration) fitAllReduce(ranks int) {
	if ranks < 2 {
		// A one-rank ring moves nothing; keep the zero model (TAR(n>0)=0
		// matches what this machine would measure).
		c.Fits[KindAllReduce] = Fitted{}
		return
	}
	sizes := []int{1 << 13, 1 << 15, 1 << 17}
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(sizes))
	for i, n := range sizes {
		data := make([][]float64, ranks)
		for r := range data {
			data[r] = make([]float64, n)
		}
		best := 0.0
		for rep := 0; rep < 2; rep++ {
			t0 := time.Now()
			if _, err := comm.RingAllReduce(data, ranks); err != nil {
				return // leave the zero model; budgets then assume free AR
			}
			if d := time.Since(t0).Seconds() * 1e3; rep == 0 || d < best {
				best = d
			}
		}
		xs[i] = 4 * float64(n) // fp32-byte convention of Expert.ParamBytes
		ys[i] = best
	}
	if f, err := perfmodel.Fit(xs, ys); err == nil {
		if f.Alpha < 0 {
			f.Alpha = 0
		}
		if f.Beta < 0 {
			f.Beta = 0
		}
		c.Fits[KindAllReduce] = f
		c.models.AR = f.Linear
	}
}

// KindAllReduce keys the Gradient-AllReduce fit in Calibration.Fits — the
// canonical sim vocabulary string (sim/vocab.go).
const KindAllReduce = sim.KindAllReduce

// Models returns the fitted scheduler models. They are in plan-estimate
// units and meant to be consumed through WorldConfig.Calibration (which
// pairs them with volumes in the same units), not mixed with
// byte-denominated testbed volumes.
func (c *Calibration) Models() Models { return c.models }

// volumes returns the measured Algorithm-1 volume set for a strategy the
// sweep covered.
func (c *Calibration) volumes(s Strategy) (core.Volumes, bool) {
	v, ok := c.vols[s]
	return v, ok
}

// hybridVolumes returns the measured volume set for one hybrid grid cell.
// The degenerate group sizes resolve to the pure strategies' measured
// volumes — the runtime delegates those cells, so their measurements ARE
// the EP/ESP sweeps.
func (c *Calibration) hybridVolumes(g int) (core.Volumes, bool) {
	switch g {
	case 1:
		return c.volumes(StrategyEP)
	case c.Ranks:
		return c.volumes(StrategyESP)
	}
	v, ok := c.hvols[g]
	return v, ok
}

// HybridGroupSizes lists the hybrid group sizes the sweep measured, in
// sweep order.
func (c *Calibration) HybridGroupSizes() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range c.Points {
		if p.Strategy == StrategyHybrid && !seen[p.GroupSize] {
			seen[p.GroupSize] = true
			out = append(out, p.GroupSize)
		}
	}
	return out
}

// Strategies lists the strategies the sweep covered.
func (c *Calibration) Strategies() []Strategy {
	seen := map[Strategy]bool{}
	var out []Strategy
	for _, p := range c.Points {
		if !seen[p.Strategy] {
			seen[p.Strategy] = true
			out = append(out, p.Strategy)
		}
	}
	return out
}

// MeasuredBest returns the degree with the lowest measured pipelined
// forward+backward time for a strategy, and that time (0, 0 when the
// strategy was not swept).
func (c *Calibration) MeasuredBest(strat Strategy) (degree int, ms float64) {
	for _, p := range c.Points {
		if p.Strategy != strat {
			continue
		}
		if degree == 0 || p.PipeMS < ms {
			degree, ms = p.Degree, p.PipeMS
		}
	}
	return degree, ms
}

// PickDegree reconciles Algorithm 1's model-driven degree with the
// measured sweep: the model's pick survives when the sweep measured that
// degree within 5% of the strategy's best, so the closed form may refine
// between grid points it validated; otherwise — including when the model
// pick lies off the measured grid — the measured-best degree wins. The
// linear models cannot see that a machine lacks the cores to realize the
// overlap they assume (that is contention, not per-task cost), but the
// sweep measured it, so the measurement outranks the model.
func (c *Calibration) PickDegree(strat Strategy, modelR int) int {
	g := 0
	if strat == StrategyHybrid {
		// Without a group size, defer to the best hybrid cell overall.
		if bg, _, _ := c.MeasuredBestHybrid(); bg != 0 {
			g = bg
		}
	}
	return c.degreePick(strat, g, modelR)
}

// degreePick is PickDegree scoped to one sweep cell: hybrid picks match
// on the group size (its degenerate sizes resolving to the pure
// strategies' cells), so a g=2 world never defers to a g=4 measurement.
func (c *Calibration) degreePick(strat Strategy, g, modelR int) int {
	if strat != StrategyHybrid {
		g = 0
	} else {
		switch g {
		case 1:
			strat, g = StrategyEP, 0
		case c.Ranks:
			strat, g = StrategyESP, 0
		}
	}
	bestR, bestT := 0, 0.0
	for _, p := range c.Points {
		if p.Strategy != strat || p.GroupSize != g {
			continue
		}
		if bestR == 0 || p.PipeMS < bestT {
			bestR, bestT = p.Degree, p.PipeMS
		}
	}
	if bestR == 0 || bestT <= 0 {
		return modelR // cell never swept: nothing measured to defer to
	}
	for _, p := range c.Points {
		if p.Strategy == strat && p.GroupSize == g && p.Degree == modelR {
			if p.PipeMS <= bestT*1.05 {
				return modelR
			}
			break
		}
	}
	return bestR
}

// MeasuredBestHybrid returns the hybrid sweep cell (group size, degree)
// with the lowest measured pipelined forward+backward time (zeros when
// hybrid was never swept).
func (c *Calibration) MeasuredBestHybrid() (groupSize, degree int, ms float64) {
	for _, p := range c.Points {
		if p.Strategy != StrategyHybrid {
			continue
		}
		if degree == 0 || p.PipeMS < ms {
			groupSize, degree, ms = p.GroupSize, p.Degree, p.PipeMS
		}
	}
	return groupSize, degree, ms
}

// MeasuredBestStrategy returns the strategy with the lowest measured
// pipelined time at its own best degree.
func (c *Calibration) MeasuredBestStrategy() (strat Strategy, degree int, ms float64) {
	for _, s := range c.Strategies() {
		if d, t := c.MeasuredBest(s); strat == "" || t < ms {
			strat, degree, ms = s, d, t
		}
	}
	return strat, degree, ms
}

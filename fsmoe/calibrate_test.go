package fsmoe

import (
	"testing"
)

func calibLayer(t *testing.T) *Layer {
	t.Helper()
	l, err := NewLayer(LayerConfig{M: 32, H: 32, Experts: 8, TopK: 2, CapacityFactor: 1.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestCalibrateSweep runs a tiny calibration and checks the profile's
// structure: every (strategy, degree) cell measured, per-kind fits
// recovered with samples behind them, and measured volume sets for every
// swept strategy.
func TestCalibrateSweep(t *testing.T) {
	l := calibLayer(t)
	cal, err := Calibrate(l, CalibrateConfig{Ranks: 4, Tokens: 96, Degrees: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	strats := cal.Strategies()
	if len(strats) != 3 { // GPTFFN supports EP, ESP, and the hybrid grid
		t.Fatalf("swept strategies %v, want EP, ESP and Hybrid", strats)
	}
	// 2 degrees × (EP + ESP + hybrid g=2, the one proper divisor of 4).
	if len(cal.Points) != 6 {
		t.Fatalf("%d sweep points, want 6", len(cal.Points))
	}
	for _, p := range cal.Points {
		if p.SeqMS <= 0 || p.PredMS <= 0 || p.PipeMS <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if (p.Strategy == StrategyHybrid) != (p.GroupSize != 0) {
			t.Fatalf("point %+v: GroupSize must be set exactly for hybrid cells", p)
		}
	}
	if gs := cal.HybridGroupSizes(); len(gs) != 1 || gs[0] != 2 {
		t.Fatalf("hybrid group sizes %v, want [2]", gs)
	}
	if g, d, ms := cal.MeasuredBestHybrid(); g != 2 || d < 1 || d > 2 || ms <= 0 {
		t.Fatalf("MeasuredBestHybrid = (%d, %d, %v)", g, d, ms)
	}
	for _, g := range []int{1, 2, 4} { // g=1 and g=4 resolve to the EP/ESP sweeps
		v, ok := cal.hybridVolumes(g)
		if !ok {
			t.Fatalf("no measured hybrid volumes for g=%d", g)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("measured hybrid volumes for g=%d invalid: %v", g, err)
		}
	}
	for _, kind := range []string{KindAlltoAll, KindAllGather, KindReduceScatter, KindExperts, KindAllReduce} {
		f, ok := cal.Fits[kind]
		if !ok {
			t.Fatalf("no fit for %s (have %v)", kind, cal.Fits)
		}
		if f.N == 0 || f.Beta < 0 || f.Alpha < 0 {
			t.Fatalf("degenerate %s fit %+v", kind, f)
		}
	}
	for _, s := range strats {
		if s == StrategyHybrid {
			continue // hybrid volumes are keyed per group size, checked above
		}
		v, ok := cal.volumes(s)
		if !ok {
			t.Fatalf("no measured volumes for %s", s)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("measured volumes for %s invalid: %v", s, err)
		}
		if v.ExpMACs <= 0 {
			t.Fatalf("measured volumes for %s carry no expert work: %+v", s, v)
		}
		if d, ms := cal.MeasuredBest(s); d < 1 || d > 2 || ms <= 0 {
			t.Fatalf("MeasuredBest(%s) = (%d, %v)", s, d, ms)
		}
	}
	if s, d, ms := cal.MeasuredBestStrategy(); s == "" || d == 0 || ms <= 0 {
		t.Fatalf("MeasuredBestStrategy = (%q, %d, %v)", s, d, ms)
	}
}

// TestCalibratedWorld: a world built on a calibration must auto-pick a
// swept strategy and in-range degrees from the measured profile, stay
// bit-identical to the uncalibrated world, and fall back cleanly when the
// requested strategy was never swept.
func TestCalibratedWorld(t *testing.T) {
	l := calibLayer(t)
	cal, err := Calibrate(l, CalibrateConfig{Ranks: 4, Tokens: 96, Degrees: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(l, WorldConfig{Ranks: 4, BatchTokens: 96, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.AutoStrategy() || !w.AutoDegree() {
		t.Fatal("calibrated world did not auto-select strategy and degrees")
	}
	picked := false
	for _, s := range cal.Strategies() {
		picked = picked || s == w.Strategy()
	}
	if !picked {
		t.Fatalf("calibrated StrategyAuto picked %q, not among swept %v", w.Strategy(), cal.Strategies())
	}
	f, b := w.PipelineDegrees()
	if f < 1 || f > 16 || b < 1 || b > 16 {
		t.Fatalf("calibrated degrees out of range: fwd=%d bwd=%d", f, b)
	}

	// Bit-identity against the plain (testbed-driven) world on one pass.
	x := RandTensor(31, 96, 32)
	dy := RandTensor(32, 96, 32)
	l.ZeroGrad()
	y1, c1, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(c1, dy); err != nil {
		t.Fatal(err)
	}
	ref, err := NewWorld(l, WorldConfig{
		Ranks: 4, BatchTokens: 96, Strategy: w.Strategy(), PipelineDegree: f, PipelineDegreeBwd: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	l.ZeroGrad()
	y2, c2, err := ref.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Backward(c2, dy); err != nil {
		t.Fatal(err)
	}
	if y1.MaxAbsDiff(y2) != 0 {
		t.Fatal("calibrated world output differs from the plain world")
	}

	// EP-only calibration: an explicit ESP world must still build (testbed
	// fallback for its degrees), and StrategyAuto must not pick the
	// unswept strategy.
	epOnly, err := Calibrate(l, CalibrateConfig{Ranks: 4, Tokens: 96, Degrees: []int{1, 2}, Strategies: []Strategy{StrategyEP}})
	if err != nil {
		t.Fatal(err)
	}
	we, err := NewWorld(l, WorldConfig{Ranks: 4, BatchTokens: 96, Strategy: StrategyESP, Calibration: epOnly})
	if err != nil {
		t.Fatal(err)
	}
	we.Close()
	wa, err := NewWorld(l, WorldConfig{Ranks: 4, BatchTokens: 96, Calibration: epOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer wa.Close()
	if wa.Strategy() != StrategyEP {
		t.Fatalf("EP-only calibration auto-picked %q", wa.Strategy())
	}
}

// TestCalibrateSingleDegree: a one-degree sweep may present a single
// distinct volume per kind; calibration must still succeed and produce a
// usable (non-all-zero) model for every sampled kind, via the
// proportional fallback when the two-parameter fit degenerates.
func TestCalibrateSingleDegree(t *testing.T) {
	l := calibLayer(t)
	cal, err := Calibrate(l, CalibrateConfig{Ranks: 2, Tokens: 64, Degrees: []int{1}, Strategies: []Strategy{StrategyEP}})
	if err != nil {
		t.Fatal(err)
	}
	if f := cal.Fits["AlltoAll"]; f.N == 0 || f.Alpha+f.Beta <= 0 {
		t.Fatalf("single-degree AlltoAll fit unusable: %+v", f)
	}
	if f := cal.Fits["Experts"]; f.N == 0 || f.Alpha+f.Beta <= 0 {
		t.Fatalf("single-degree Experts fit unusable: %+v", f)
	}
}

// TestPickDegree pins the model-vs-measurement reconciliation: the model
// keeps its pick when the sweep measured it within 5% of the best,
// otherwise (or off grid) the measured best wins; unswept strategies defer
// to the model.
func TestPickDegree(t *testing.T) {
	cal := &Calibration{Points: []CalibrationPoint{
		{Strategy: StrategyEP, Degree: 1, PipeMS: 100},
		{Strategy: StrategyEP, Degree: 2, PipeMS: 80},
		{Strategy: StrategyEP, Degree: 4, PipeMS: 82},
	}}
	if got := cal.PickDegree(StrategyEP, 4); got != 4 {
		t.Fatalf("within-tolerance model pick overridden: got %d", got)
	}
	if got := cal.PickDegree(StrategyEP, 1); got != 2 {
		t.Fatalf("beaten model pick kept: got %d", got)
	}
	if got := cal.PickDegree(StrategyEP, 16); got != 2 {
		t.Fatalf("off-grid model pick kept: got %d", got)
	}
	if got := cal.PickDegree(StrategyESP, 7); got != 7 {
		t.Fatalf("unswept strategy snapped: got %d", got)
	}
}

// TestProportionalFit pins the degenerate-sample fallback directly.
func TestProportionalFit(t *testing.T) {
	f := proportionalFit([]float64{2, 2, 2}, []float64{1, 3, 2})
	if f.Alpha != 0 || f.Beta != 1 || f.N != 3 {
		t.Fatalf("proportionalFit = %+v, want beta 1", f)
	}
	if z := proportionalFit(nil, nil); z.N != 0 {
		t.Fatalf("empty proportionalFit = %+v", z)
	}
}

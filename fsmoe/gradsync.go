package fsmoe

import (
	"repro/internal/gradsync"
	"repro/internal/moe"
)

// Executable gradient-synchronization vocabulary (§5 made real): a stack
// of Worlds runs backward with the Gradient-AllReduce chunked into the
// backward pipelines' inter-stream slack, then steps every rank's
// parameter replica to bit-identical values.
type (
	// StepConfig tunes one overlapped training step (learning rate,
	// strategy, partitioning models, chunk sizes).
	StepConfig = moe.StepConfig
	// StepResult is one measured step: forward/backward/tail times, the
	// sync report, per-rank post-step parameter replicas, and the
	// backward plans with their embedded AllReduce slices.
	StepResult = moe.StepResult
	// SyncStrategy selects how Gradient-AllReduce is scheduled.
	SyncStrategy = gradsync.Strategy
	// SyncReport is the outcome of a blocking SyncGradients call.
	SyncReport = moe.SyncReport
	// GradSyncReport summarizes bytes hidden vs exposed and ring traffic.
	GradSyncReport = gradsync.Report
)

// The three gradient-synchronization strategies the executable runtime
// compares (§5 vs the paper's baselines).
const (
	// SyncFSMoE adaptively partitions the gradients into each layer's
	// backward slack via core.PartitionGradients (§5).
	SyncFSMoE = gradsync.StrategyFSMoE
	// SyncLinaFixed launches fixed-size chunks as soon as gradients
	// exist, slack or not (Lina, §6.4; 30 MB chunks by default).
	SyncLinaFixed = gradsync.StrategyFixedChunk
	// SyncNoOverlap synchronizes everything after backward — the fully
	// exposed tail.
	SyncNoOverlap = gradsync.StrategyNoOverlap
)

// Step runs one overlapped training step on a single-layer stack; see
// StepStack.
func (w *World) Step(x, dy *Tensor, cfg StepConfig) (*StepResult, error) {
	return w.inner.Step(x, dy, cfg)
}

// StepStack runs one training step over a stack of Worlds (layer i feeds
// layer i+1): forward, backward in reverse with the §5 Gradient-AllReduce
// overlapped into each backward stream plan per cfg.Strategy, the exposed
// tail, and an SGD update. The AllReduce sums each rank's disjoint
// partial contribution, reconstructing the full-batch gradient exactly
// (no 1/R scaling — the per-rank partials already split one batch), so
// every rank ends with bit-identical parameters under every strategy;
// only the measured wall time differs.
func StepStack(worlds []*World, x, dy *Tensor, cfg StepConfig) (*StepResult, error) {
	return moe.StepWorlds(inners(worlds), x, dy, cfg)
}

// SyncGradients synchronizes the stack's accumulated parameter gradients
// immediately (no overlap): each rank's partial gradients — its expert
// shard plus its disjoint share of the dense gate gradient — are
// ring-reduced in real chunked collectives until every rank holds the
// identical full-batch gradient. Use StepStack to hide the same work
// inside the backward pipelines instead.
func SyncGradients(worlds []*World, cfg StepConfig) (*SyncReport, error) {
	return moe.SyncWorlds(inners(worlds), cfg)
}

func inners(worlds []*World) []*moe.World {
	out := make([]*moe.World, len(worlds))
	for i, w := range worlds {
		out[i] = w.inner
	}
	return out
}

package fsmoe

import (
	"os"
	"testing"
)

// TestMain enables static plan verification through the public toggle, so
// every World any test builds has its stream plans structurally checked
// before execution.
func TestMain(m *testing.M) {
	SetVerifyPlans(true)
	os.Exit(m.Run())
}

// Package fsmoe is the public API of the FSMoE reproduction: a flexible
// MoE layer toolkit (five gating functions, two ordering functions, two
// expert types, six hook points) plus the scheduling system the paper
// contributes (Algorithm 1's adaptive pipeline degrees, inter/intra-node
// communication co-scheduling, and adaptive gradient partitioning),
// evaluated on simulated testbeds.
//
// Building a layer (§3.3's front-end):
//
//	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
//	    M: 64, H: 256, Experts: 8, TopK: 2, CapacityFactor: 1.2,
//	    Gate: fsmoe.GateGShard, Order: fsmoe.OrderTutel,
//	    Expert: fsmoe.ExpertGPT, Seed: 42,
//	})
//	y, cache, err := layer.Forward(x, true)
//	dx, err := layer.Backward(cache, dy)
//
// Scheduling a model on a testbed (§4–§6's back-end):
//
//	cluster := fsmoe.TestbedA()
//	times, err := fsmoe.CompareSystems(cluster, fsmoe.Mixtral7B(cluster))
//	fmt.Println(times[fsmoe.SystemFSMoE], times[fsmoe.SystemDSMoE])
package fsmoe

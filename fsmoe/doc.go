// Package fsmoe is the public API of the FSMoE reproduction: a flexible
// MoE layer toolkit (five gating functions, two ordering functions, two
// expert types, six hook points) plus the scheduling system the paper
// contributes (Algorithm 1's adaptive pipeline degrees, inter/intra-node
// communication co-scheduling, and adaptive gradient partitioning),
// evaluated on simulated testbeds.
//
// Building a layer (§3.3's front-end):
//
//	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
//	    M: 64, H: 256, Experts: 8, TopK: 2, CapacityFactor: 1.2,
//	    Gate: fsmoe.GateGShard, Order: fsmoe.OrderTutel,
//	    Expert: fsmoe.ExpertGPT, Seed: 42,
//	})
//	y, cache, err := layer.Forward(x, true)
//	dx, err := layer.Backward(cache, dy)
//
// Scheduling a model on a testbed (§4–§6's back-end):
//
//	cluster := fsmoe.TestbedA()
//	times, err := fsmoe.CompareSystems(cluster, fsmoe.Mixtral7B(cluster))
//	fmt.Println(times[fsmoe.SystemFSMoE], times[fsmoe.SystemDSMoE])
//
// # Parallel strategies
//
// The executable multi-rank runtime (NewWorld) splits one layer's work
// across R in-process ranks under a pluggable parallel strategy, the
// WorldConfig.Strategy field:
//
//   - StrategyEP — pure expert parallelism: experts sharded E/R per rank,
//     tokens moved by r-chunked dispatch/combine AlltoAll on the shared
//     inter stream;
//   - StrategyESP — expert-sharding parallelism: every rank computes a
//     shard of every expert (ShardedExpert), with chunked AllGather and
//     ReduceScatter stages on the shared intra stream and an empty inter
//     stream (so §5 Gradient-AllReduce slices overlap freely);
//   - StrategyDenseSlots — SoftMoE dense plans chunked over expert slots
//     instead of token rows, through the EP pipeline;
//   - StrategyHybrid — nested EP×ESP: the R ranks split into R/g
//     expert-parallel groups of WorldConfig.GroupSize g ESP shard members
//     each (g must divide R), combining both collective families in one
//     schedule;
//   - StrategyAuto (the zero value) — dense gates get DenseSlots, and
//     hard-routing layers run Algorithm 1 as a 2-D grid over (group size
//     × pipeline degree) on per-g volume models, selecting EP (g=1),
//     ESP (g=R) or an interior hybrid cell.
//
// The hybrid schedule, for R=4 ranks and GroupSize g=2 (two EP groups
// of two shard members), per pipeline chunk:
//
//	rank 0 ┐ group 0: AG ×2 + RS on stream intra:g0 ┐
//	rank 1 ┘   (each expert sharded across the group) ├─ dispatch/combine
//	rank 2 ┐ group 1: AG ×2 + RS on stream intra:g1 │  AlltoAll between
//	rank 3 ┘   (experts E·g/R per group)             ┘  groups on "inter"
//
// Each group's intra-collectives run on their own intra:g<G> stream
// concurrently with the other groups' and with the inter-group AlltoAll
// lanes, so both §4 overlap dimensions appear in one plan. The edges
// degenerate exactly: GroupSize 1 delegates to pure EP and GroupSize R
// to pure ESP — the plans are task-for-task those of the pure
// strategies — and every interior cell is bit-identical to the
// single-rank layer. Leaving GroupSize zero under StrategyHybrid (or
// StrategyAuto) lets the grid pick g; Calibration sweeps the hybrid
// cells too, so calibrated worlds pick (g, r) from measured costs.
//
// Every strategy is bit-identical to the single-rank Layer path at every
// (R, r); they differ only in which collectives move the data and where
// the slack for gradient synchronization appears.
//
// Migrating from the pre-strategy WorldConfig: a zero Strategy field now
// means StrategyAuto, which behaves like the old hard-coded EP for layers
// whose experts lack the ShardedExpert contract, but may select ESP for
// the built-in GPT/Mixtral experts (results are bit-identical either way)
// and no longer rejects SoftMoE layers — dense plans execute under
// DenseSlots instead of failing with "world supports hard routing only".
// Pass Strategy: StrategyEP to pin the old behavior exactly.
//
// # Compute runtime
//
// The real tensor path runs on a shared runtime (internal/tensor): experts
// and attention heads execute concurrently on a lazily-started worker pool
// sized by SetComputeWorkers, reading and writing their blocks of the
// (E, T, M) activations through zero-copy views, and transient buffers are
// recycled through a free-list exposed here as GetTensor/PutTensor.
// Parallelism never reorders floating-point accumulation — results are
// bit-identical at any worker count.
//
// Ownership rules for pooled buffers: whoever calls GetTensor owns the
// buffer and must PutTensor it at most once, only after every view of it
// (Reshape/View/Slice/Row all alias the same backing array) is dead. After
// Put, the array may be handed to an unrelated GetTensor, so a stale view
// — or a second PutTensor of the same tensor — silently corrupts someone
// else's data. PutTensor ignores tensors it does not own (NewTensor
// results, views), so releasing a tensor of unknown origin is safe; "at
// most once" still binds for pooled ones. Custom Expert implementations may
// implement the zero-copy fast path (moe.IntoExpert's ForwardInto and
// BackwardInto); the layer then hands them views of its buffers instead of
// copying per-expert blocks.
//
// Because experts execute concurrently, a custom Expert must not share
// mutable state (scratch buffers, RNGs, tied Param tensors) with another
// expert instance in the same layer. Registering the same instance at
// several indices is detected and runs sequentially; state shared between
// distinct instances is the implementer's responsibility to synchronize.
//
// # Resource governance and calibration
//
// A World partitions the machine instead of letting every stream fight
// over one queue: each rank's compute stream runs on an OS-thread-pinned
// goroutine with its own scoped worker pool, communication staging
// kernels share a small dedicated fan-out allotment (the staging streams
// themselves still run concurrently — that concurrency is the pipeline's
// structure), and the planned split is reported on every measured
// pipelined trace (LastTrace().Resources; the sequential baseline runs
// unbound on one goroutine and reports none). SetScopedPools(false) restores
// the old shared-pool behavior for comparison; results are bit-identical
// either way.
//
// Calibrate closes the remaining simulator-era loop: it measures a short
// strategy × pipeline-degree sweep of the executable World on this
// machine, fits the §4.1 linear cost models from the measured stage
// times, and a WorldConfig carrying the resulting Calibration runs
// StrategyAuto and the automatic pipeline degrees on those measured
// coefficients instead of testbed constants. Migrating: nothing changes
// unless WorldConfig.Calibration is set; custom ChunkedExpert /
// ShardedExpert implementations must accept the new trailing *WorkerPool
// parameter in BeginChunked/BeginSharded and route their GEMMs through it
// (nil means the shared default pool, preserving old behavior).
//
// # Fault tolerance
//
// The executable World survives injected failure. NewFaultPlan compiles a
// FaultSpec — per-kind/per-stream transient probabilities, straggler
// delays, in-collective failures, an optional permanent rank-down — into
// a deterministic injector (every decision is a pure function of the
// seed and the task identity, so chaos runs reproduce under any stream
// interleaving); World.SetFaultPlan installs it.
//
// Transient faults fire before any buffer mutation and are retried with
// exponential backoff and deterministic jitter under World.SetRetry's
// policy (default: 4 attempts, collective kinds only — expert W-gradient
// tasks accumulate in place and are never replayed). A recovered pass is
// bit-identical to a fault-free one; the retries appear as events on the
// measured trace (Trace.Events, Trace.EventCount with EventFault /
// EventRetry / EventStraggler / EventSkip).
//
// World.SetDeadline bounds each pass: on expiry the streams drain
// cooperatively and the pass fails with an error matching
// context.DeadlineExceeded, leaking no goroutines.
//
// A permanent rank failure does not abort the pass: forward-time, the
// dead rank's tokens re-route into surviving experts' free capacity
// (overflow dropped); backward-time, the routing is kept and the dead
// experts' gradient slots are cleared. The router is frozen for the
// degraded step and dead experts accumulate zero gradient, so an
// optimizer step leaves them untouched and ResetHealth resumes from
// consistent weights. World.LastDegraded reports what was lost
// (DegradedResult); World.Health tracks per-rank state, and a
// still-degraded World keeps completing degraded steps until ResetHealth
// (a closed World fails fast with ErrWorldClosed). StepStack completes
// multi-layer §5 steps around a degraded layer with every rank's
// post-step replica still bit-identical.
//
// # Checkpoint/restore and elastic recovery
//
// Degraded mode keeps a step alive; checkpoints and recovery keep the
// run alive. World.Snapshot / Checkpoint capture the complete training
// state — parameters, step and collective-op counters, the gate's RNG —
// and CheckpointManager persists it crash-consistently: the snapshot is
// written to a temp file in the target directory, fsynced, and renamed
// into place, so the final name only ever holds a complete file. The
// format is versioned and integrity-checked (magic "FSMC", format
// version, gob payload, CRC-64/ECMA trailer); corruption surfaces as a
// typed error — ErrCheckpointTruncated, ErrCheckpointChecksum,
// ErrCheckpointBadMagic, ErrCheckpointVersion — and an empty directory
// as ErrNoCheckpoint. Restore validates every world against the
// snapshot before mutating any of them, so a mismatched snapshot is
// rejected without tearing the stack. Set StepConfig.Checkpoint (and
// optionally CheckpointEvery) to snapshot the stack every n-th step
// from inside the training loop; the written path returns on
// StepResult.CheckpointPath.
//
// After a permanent rank loss, Recover (or World.Recover per layer)
// rebuilds instead of limping: under RecoveryPolicy{Mode:
// RecoverShrink} the world re-plans onto the largest surviving rank
// count that still divides the expert count; RecoverRejoin keeps the
// rank count, modeling a replacement host adopting the dead rank's
// shard. The dead rank's experts are re-assigned, their checkpointed
// weights re-placed through the guarded Broadcast collective (chaos
// injection and traffic accounting reach the recovery path; transient
// faults retry under the world's RetryPolicy), the strategy re-emits
// its collective chains for the new topology — ESP and Hybrid fall back
// to EP, whose layout any surviving rank count supports — and the fault
// plan's down trigger is stripped so the rebuilt world is not re-killed
// on its next pass. RecoveryReport (also via World.LastRecovery)
// records mode, topology delta, restored step, moved experts,
// re-placement traffic, retries and the measured MTTR; StepMetrics
// carries Recoveries/RecoveryMS when a Sink is set. The recovery
// contract: a recovered run is bit-identical to a fresh World built
// directly on the surviving topology and restored from the same
// snapshot, and Recover leaves exactly the state surface ResetHealth
// would — no degraded residue distinguishes the two paths.
//
// # Observability
//
// The runtime reports what it executed. Set WorldConfig.Sink and every
// Step / StepWorlds call builds one *StepMetrics — wall/tail times,
// per-stream busy fractions, the overlap ratio vs the serialized task
// time, per-expert token loads with utilization entropy and imbalance,
// fault/retry/degraded tallies and the planned pool split — returns it on
// StepResult.Metrics and hands it to the sink. NewTelemetry creates a
// metrics registry (counters, gauges, fixed-bucket histograms; an
// expvar.Var), and NewRegistrySink folds step metrics into one.
// ChromeTraceJSON / ChromeTraceBuilder / WriteChromeTrace export any
// measured or simulated Trace as Chrome trace_event JSON for Perfetto or
// chrome://tracing: one thread row per stream (annotated with its
// worker/pinning binding), task kinds as categories, fault incidents as
// instant events.
//
// Sink threading and ownership: OnStep is invoked synchronously from the
// goroutine that finished the step, after the SGD update, never
// concurrently with itself for one World stack — a sink that fans out to
// files or sockets must do its own buffering if it cannot afford to block
// the training loop. The metrics value is fully formed when OnStep runs
// and the runtime never mutates or retains it afterwards; the sink may
// keep it. Several Worlds stepped together by StepWorlds may share one
// Sink value — it is deduplicated and receives each step exactly once.
// A nil Sink disables emission entirely; the guard is a single nil check,
// so unconfigured telemetry adds zero allocations to the step hot path
// (BenchmarkStepTelemetryGuard pins this). Registry instruments are
// shared handles: any goroutine may Add/Set/Observe concurrently, and
// Snapshot may run concurrently with writers (it reads atomically, not
// transactionally).
//
// # Static analysis
//
// The conventions the runtime can only police late are enforced at build
// time by cmd/fsmoe-lint (stdlib-only; internal/lint): poolcheck tracks
// pooled-tensor ownership (every GetTensor/tensor.Get result must be Put
// or handed to a new owner on every path, and Put of a View/Slice/Reshape
// result is a static error — the compile-time twin of SetPoolDebug),
// kindcheck forbids re-typing the canonical task-kind/event vocabulary as
// raw string literals outside its declaration file, and guardcheck keeps
// strategy plan-builders on the comm.*Guarded collective entry points so
// in-collective fault injection reaches every transfer. Deliberate
// exceptions carry a visible "//fsmoe:allow <analyzer> <reason>" comment.
//
// SetVerifyPlans(true) additionally runs runtime.Plan.Verify on every
// stream plan a World builds before it executes: dependency indices in
// range and acyclic, streams declared, bindings resolvable, task kinds
// canonical, estimates non-negative — each violation a named sentinel
// error, all violations joined. The flag is off by default (Verify walks
// the whole task table); the test suites and CI run with it on.
package fsmoe

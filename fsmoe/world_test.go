package fsmoe

import (
	"errors"
	"strings"
	"testing"
)

// plainExpert implements only the base Expert contract — no chunked or
// sharded fast paths — for strategy-validation tests.
type plainExpert struct{ id int }

func (*plainExpert) Name() string { return "plain" }
func (*plainExpert) Forward(x *Tensor) (*Tensor, ExpertCache) {
	return x.Clone(), nil
}
func (*plainExpert) Backward(_ ExpertCache, dy *Tensor) *Tensor { return dy.Clone() }
func (*plainExpert) Params() []*Param                           { return nil }
func (*plainExpert) FwdMACs(n int) float64                      { return float64(n) }
func (*plainExpert) ParamBytes() float64                        { return 0 }

func worldTestLayer(t *testing.T) *Layer {
	t.Helper()
	l, err := NewLayer(LayerConfig{
		M: 32, H: 64, Experts: 8, TopK: 2, CapacityFactor: 1.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestWorldMatchesLayer: the public multi-rank pipelined path agrees
// bit-for-bit with the single-rank Layer path.
func TestWorldMatchesLayer(t *testing.T) {
	layer := worldTestLayer(t)
	x := RandTensor(91, 96, 32)
	dy := RandTensor(92, 96, 32)

	layer.ZeroGrad()
	wantY, cache, err := layer.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	wantDx, err := layer.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	var wantGrads []*Tensor
	for _, p := range layer.Params() {
		wantGrads = append(wantGrads, p.G.Clone())
	}

	w, err := NewWorld(layer, WorldConfig{Ranks: 4, PipelineDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	layer.ZeroGrad()
	gotY, wc, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	gotDx, err := w.Backward(wc, dy)
	if err != nil {
		t.Fatal(err)
	}
	if gotY.MaxAbsDiff(wantY) != 0 || gotDx.MaxAbsDiff(wantDx) != 0 {
		t.Fatal("world output or input gradient differs from the layer path")
	}
	for i, p := range layer.Params() {
		if p.G.MaxAbsDiff(wantGrads[i]) != 0 {
			t.Fatalf("param grad %d differs from the layer path", i)
		}
	}
	if w.LastTrace() == nil || w.LastTrace().Makespan <= 0 {
		t.Fatal("world did not record a measured trace")
	}
}

// TestWorldAutoDegree: with PipelineDegree 0, Algorithm 1 picks the
// degrees that execute — both at least 1, recorded with their predicted
// times, and the pass still runs.
func TestWorldAutoDegree(t *testing.T) {
	layer := worldTestLayer(t)
	w, err := NewWorld(layer, WorldConfig{Ranks: 2, BatchTokens: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !w.AutoDegree() {
		t.Fatal("expected automatic degree selection")
	}
	fwd, bwd := w.PipelineDegrees()
	if fwd < 1 || bwd < 1 {
		t.Fatalf("degrees (%d, %d) must be >= 1", fwd, bwd)
	}
	df, db := w.DegreeResults()
	if df.R != fwd || db.R != bwd || df.TMoE <= 0 || db.TMoE <= 0 {
		t.Fatalf("degree results inconsistent: %+v %+v", df, db)
	}
	x := RandTensor(93, 64, 32)
	y, wc, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Backward(wc, RandTensor(94, 64, 32)); err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 64 || y.Dim(1) != 32 {
		t.Fatalf("unexpected output shape %v", y.Shape())
	}
}

// TestWorldExplicitBwdDegree: the backward degree can differ from the
// forward one (the §2.3 motivation realized on the executable path).
func TestWorldExplicitBwdDegree(t *testing.T) {
	layer := worldTestLayer(t)
	w, err := NewWorld(layer, WorldConfig{Ranks: 2, PipelineDegree: 4, PipelineDegreeBwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	fwd, bwd := w.PipelineDegrees()
	if fwd != 4 || bwd != 2 {
		t.Fatalf("degrees (%d, %d), want (4, 2)", fwd, bwd)
	}
}

// TestWorldStrategySurface: explicit strategies execute bit-identically
// to the Layer path, and each reports its name.
func TestWorldStrategySurface(t *testing.T) {
	x := RandTensor(95, 96, 32)
	dy := RandTensor(96, 96, 32)
	for _, strat := range []Strategy{StrategyEP, StrategyESP, StrategyHybrid} {
		layer := worldTestLayer(t)
		layer.ZeroGrad()
		wantY, cache, err := layer.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		wantDx, err := layer.Backward(cache, dy)
		if err != nil {
			t.Fatal(err)
		}
		cfg := WorldConfig{Ranks: 4, PipelineDegree: 2, Strategy: strat}
		if strat == StrategyHybrid {
			cfg.GroupSize = 2
		}
		w, err := NewWorld(layer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if w.Strategy() != strat || w.AutoStrategy() {
			t.Fatalf("strategy = %q auto=%v, want explicit %q", w.Strategy(), w.AutoStrategy(), strat)
		}
		if strat == StrategyHybrid && w.GroupSize() != 2 {
			t.Fatalf("GroupSize() = %d, want the configured 2", w.GroupSize())
		}
		layer.ZeroGrad()
		gotY, wc, err := w.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		gotDx, err := w.Backward(wc, dy)
		if err != nil {
			t.Fatal(err)
		}
		if gotY.MaxAbsDiff(wantY) != 0 || gotDx.MaxAbsDiff(wantDx) != 0 {
			t.Fatalf("strategy %s differs from the layer path", strat)
		}
	}
}

// TestWorldAutoStrategy: StrategyAuto resolves from the layer — dense
// gates get DenseSlots (and the previously rejected SoftMoE world now
// runs end to end), and a hard-routing layer gets a hard strategy whose
// degrees come from that strategy's volumes.
func TestWorldAutoStrategy(t *testing.T) {
	soft, err := NewLayer(LayerConfig{
		M: 32, H: 48, Experts: 8, TopK: 1, CapacityFactor: 1,
		Gate: GateSoftMoE, SlotsPerExpert: 3, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := RandTensor(97, 96, 32)
	dy := RandTensor(98, 96, 32)
	soft.ZeroGrad()
	wantY, cache, err := soft.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	wantDx, err := soft.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(soft, WorldConfig{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy() != StrategyDenseSlots || !w.AutoStrategy() {
		t.Fatalf("auto strategy for SoftMoE = %q (auto=%v), want %q", w.Strategy(), w.AutoStrategy(), StrategyDenseSlots)
	}
	soft.ZeroGrad()
	gotY, wc, err := w.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	gotDx, err := w.Backward(wc, dy)
	if err != nil {
		t.Fatal(err)
	}
	if gotY.MaxAbsDiff(wantY) != 0 || gotDx.MaxAbsDiff(wantDx) != 0 {
		t.Fatal("dense-slots world differs from the layer path")
	}

	hard := worldTestLayer(t)
	hw, err := NewWorld(hard, WorldConfig{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	switch s := hw.Strategy(); s {
	case StrategyEP, StrategyESP:
		if hw.GroupSize() != 0 {
			t.Fatalf("pure strategy %q carries GroupSize %d", s, hw.GroupSize())
		}
	case StrategyHybrid:
		if g := hw.GroupSize(); g <= 1 || g >= 4 || 4%g != 0 {
			t.Fatalf("auto hybrid picked an edge or non-divisor group size %d", g)
		}
	default:
		t.Fatalf("auto strategy for hard routing = %q", s)
	}
	if !hw.AutoDegree() {
		t.Fatal("auto strategy should still run Algorithm 1 for the degrees")
	}
}

// TestWorldESPRequiresShardedExperts: the public surface propagates the
// strategy-aware validation message.
func TestWorldESPRequiresShardedExperts(t *testing.T) {
	layer, err := NewLayer(LayerConfig{
		M: 32, H: 16, Experts: 2, TopK: 1, CapacityFactor: 1, Seed: 3,
		CustomExperts: []Expert{&plainExpert{id: 0}, &plainExpert{id: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewWorld(layer, WorldConfig{Ranks: 2, PipelineDegree: 1, Strategy: StrategyESP})
	if err == nil {
		t.Fatal("ESP with plain custom experts must fail")
	}
	if !strings.Contains(err.Error(), string(StrategyESP)) || !strings.Contains(err.Error(), "ShardedExpert") {
		t.Fatalf("error must name the strategy and the missing contract: %v", err)
	}
}

// TestWorldFaultSurface exercises the public fault-tolerance API end to
// end: a transient chaos pass recovers bit-identically with visible
// retry events, a permanent rank-down completes degraded with an
// accurate DegradedResult, ResetHealth restores full strength, and a
// closed world fails fast with ErrWorldClosed.
func TestWorldFaultSurface(t *testing.T) {
	layer := worldTestLayer(t)
	x := RandTensor(93, 96, 32)
	dy := RandTensor(94, 96, 32)
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, PipelineDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	pass := func() *Tensor {
		t.Helper()
		layer.ZeroGrad()
		y, cache, err := w.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Backward(cache, dy); err != nil {
			t.Fatal(err)
		}
		return y
	}
	ref := pass()

	// Transient chaos on every collective kind; cap 2 under 4 attempts.
	w.SetFaultPlan(NewFaultPlan(FaultSpec{
		Seed: 21,
		KindProb: map[string]float64{
			KindAlltoAll: 0.5, KindAllGather: 0.5, KindReduceScatter: 0.5,
		},
		CollectiveProb:       0.3,
		MaxTransientsPerTask: 2,
	}))
	y := pass()
	if y.MaxAbsDiff(ref) != 0 {
		t.Fatal("chaos pass diverged from fault-free pass")
	}

	// Permanent rank-down: degraded completion with an accurate report.
	w.SetFaultPlan(NewFaultPlan(FaultSpec{
		Seed: 22, Down: &FaultDown{Rank: 1, Kind: KindExperts},
	}))
	pass()
	deg := w.LastDegraded()
	if deg == nil || deg.Rank != 1 || len(deg.LostExperts) != 2 {
		t.Fatalf("LastDegraded = %+v, want rank 1 with 2 lost experts", deg)
	}
	if h := w.Health(); h[1] {
		t.Fatal("rank 1 still healthy after permanent failure")
	}

	// Recovery and close semantics.
	w.SetFaultPlan(nil)
	w.ResetHealth()
	if y2 := pass(); y2.MaxAbsDiff(ref) != 0 {
		t.Fatal("post-ResetHealth pass diverged from fault-free pass")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("double Close = %v, want ErrWorldClosed", err)
	}
	if _, _, err := w.Forward(x, false); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("Forward after Close = %v, want ErrWorldClosed", err)
	}
}

// TestWorldHybridSurface pins the public hybrid plumbing: an explicit
// hybrid world with an unset group size lets the 2-D grid pick a divisor
// of the rank count, misconfiguration errors name the strategy and field,
// and a calibrated hybrid world draws its degrees from the measured
// hybrid cells while staying bit-identical to the testbed-driven world.
func TestWorldHybridSurface(t *testing.T) {
	layer := worldTestLayer(t)

	// Unset GroupSize with explicit hybrid: grid-picked divisor.
	w, err := NewWorld(layer, WorldConfig{Ranks: 4, Strategy: StrategyHybrid})
	if err != nil {
		t.Fatal(err)
	}
	g := w.GroupSize()
	if g < 1 || 4%g != 0 {
		t.Fatalf("grid-picked GroupSize %d is not a divisor of 4", g)
	}
	if w.AutoStrategy() {
		t.Fatal("explicit hybrid must not report AutoStrategy")
	}
	if !w.AutoDegree() {
		t.Fatal("unset degrees under hybrid must come from Algorithm 1")
	}
	w.Close()

	// Misconfiguration fails at NewWorld, naming strategy and field.
	if _, err := NewWorld(layer, WorldConfig{Ranks: 4, Strategy: StrategyHybrid, GroupSize: 3}); err == nil ||
		!strings.Contains(err.Error(), string(StrategyHybrid)) || !strings.Contains(err.Error(), "GroupSize") {
		t.Fatalf("GroupSize=3 over 4 ranks: %v", err)
	}

	// Calibrated hybrid: degrees picked from the measured hybrid cells,
	// output bit-identical to the uncalibrated world.
	cal, err := Calibrate(layer, CalibrateConfig{Ranks: 4, Tokens: 96, Degrees: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	x := RandTensor(41, 96, 32)
	dy := RandTensor(42, 96, 32)
	cw, err := NewWorld(layer, WorldConfig{Ranks: 4, Strategy: StrategyHybrid, GroupSize: 2, BatchTokens: 96, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	f, b := cw.PipelineDegrees()
	if f < 1 || f > 16 || b < 1 || b > 16 {
		t.Fatalf("calibrated hybrid degrees out of range: fwd=%d bwd=%d", f, b)
	}
	layer.ZeroGrad()
	y1, c1, err := cw.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Backward(c1, dy); err != nil {
		t.Fatal(err)
	}
	ref, err := NewWorld(layer, WorldConfig{
		Ranks: 4, Strategy: StrategyHybrid, GroupSize: 2, PipelineDegree: f, PipelineDegreeBwd: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	layer.ZeroGrad()
	y2, c2, err := ref.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Backward(c2, dy); err != nil {
		t.Fatal(err)
	}
	if y1.MaxAbsDiff(y2) != 0 {
		t.Fatal("calibrated hybrid world differs from the testbed-driven hybrid world")
	}
}

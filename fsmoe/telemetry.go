package fsmoe

import (
	"io"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Telemetry vocabulary: the observability surface of the executable
// runtime. A Telemetry registry holds live counters/gauges/histograms
// (race-safe, allocation-free on the hot path, expvar-publishable); a
// Sink receives one structured StepMetrics per completed training step;
// ChromeTrace converts measured traces into Perfetto-loadable trace_event
// JSON. See the package documentation (doc.go) for the ownership and
// threading rules.
type (
	// Telemetry is a named collection of live metric instruments. It
	// implements expvar.Var, so expvar.Publish("fsmoe", reg) exposes it on
	// /debug/vars.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of every instrument.
	TelemetrySnapshot = telemetry.Snapshot
	// Sink consumes one StepMetrics per completed training step.
	Sink = telemetry.Sink
	// SinkFunc adapts a function to the Sink interface.
	SinkFunc = telemetry.SinkFunc
	// StepMetrics is the structured record of one training step: wall-time
	// decomposition, overlap ratio vs sequential, per-stream busy
	// fractions, per-expert routed token loads with utilization entropy
	// and imbalance factor, fault/retry/degraded tallies, resource-plan
	// occupancy and gradient-sync bytes.
	StepMetrics = telemetry.StepMetrics
	// RegistrySink records every StepMetrics into a Telemetry registry.
	RegistrySink = telemetry.RegistrySink
	// ChromeTraceBuilder accumulates traces for one trace_event export —
	// one process per added trace, one thread row per stream.
	ChromeTraceBuilder = telemetry.ChromeTraceBuilder
)

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// NewRegistrySink wires a per-step sink to reg: step/fault counters,
// last-step gauges, a step-latency histogram and the per-expert load
// histogram. Its OnStep is allocation-free.
func NewRegistrySink(reg *Telemetry) *RegistrySink { return telemetry.NewRegistrySink(reg) }

// ChromeTraceJSON exports one measured (or simulated) trace as a
// chrome://tracing / Perfetto-loadable trace_event document under the
// given track name.
func ChromeTraceJSON(name string, tr *Trace) ([]byte, error) {
	return telemetry.ChromeTraceJSON(name, tr)
}

// WriteChromeTrace exports the named traces to w as one trace_event
// document, one process row group per trace. Nil traces are skipped, so
// callers can pass LastTrace() results unconditionally.
func WriteChromeTrace(w io.Writer, names []string, traces []*Trace) error {
	var b telemetry.ChromeTraceBuilder
	for i, tr := range traces {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		b.AddTrace(name, tr)
	}
	_, err := b.WriteTo(w)
	return err
}

// Canonical task-kind and trace-event vocabularies (sim/vocab.go): the
// category strings Chrome trace exports carry and the kind keys
// FaultSpec/RetryPolicy target.
func TaskKinds() []string       { return sim.Kinds() }
func TraceEventTypes() []string { return sim.EventTypes() }

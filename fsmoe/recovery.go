package fsmoe

// Checkpoint/restore and elastic recovery: the facade over internal/ckpt
// (crash-consistent, checksummed snapshot files) and the moe world's
// rollback-based rebuild after a permanent rank loss. A training loop
// checkpoints by setting StepConfig.Checkpoint; after a rank dies it
// calls Recover with the latest snapshot and keeps stepping on the
// surviving topology — bit-identically to a fresh run restarted from the
// same checkpoint there.

import (
	"repro/internal/ckpt"
	"repro/internal/moe"
)

type (
	// Snapshot is a whole training stack's checkpointed state: one
	// WorldState per layer plus the completed-step stamp.
	Snapshot = ckpt.Snapshot
	// WorldState is one world's full mutable training state — gate and
	// per-expert parameters, step and collective counters, gate RNG.
	WorldState = ckpt.WorldState
	// CheckpointManager writes and reads snapshot files in a directory:
	// atomic (temp + fsync + rename), checksummed, versioned, optionally
	// pruned to the newest Keep files.
	CheckpointManager = ckpt.Manager
	// RecoveryPolicy configures Recover; the zero value shrinks onto the
	// surviving ranks.
	RecoveryPolicy = moe.RecoveryPolicy
	// RecoveryMode selects how the world is rebuilt around the dead rank.
	RecoveryMode = moe.RecoveryMode
	// RecoveryReport describes one world's completed recovery: the
	// topology transition, the experts whose weights were re-placed, the
	// broadcast traffic, and the rebuild wall time (MTTR).
	RecoveryReport = moe.RecoveryReport
)

// Recovery modes.
const (
	// RecoverShrink rebuilds on the surviving ranks (the largest rank
	// count below the old one that divides the expert count).
	RecoverShrink = moe.RecoverShrink
	// RecoverRejoin keeps the rank count: the dead rank is replaced and
	// its expert shard restored from the checkpoint.
	RecoverRejoin = moe.RecoverRejoin
)

// Typed checkpoint-corruption errors (errors.Is-matchable): a damaged or
// foreign snapshot file fails loudly instead of restoring garbage.
var (
	ErrCheckpointTruncated = ckpt.ErrTruncated
	ErrCheckpointChecksum  = ckpt.ErrChecksum
	ErrCheckpointBadMagic  = ckpt.ErrBadMagic
	ErrCheckpointVersion   = ckpt.ErrVersion
	ErrNoCheckpoint        = ckpt.ErrNoCheckpoint
)

// Checkpoint captures a stack's full training state — every layer's
// parameters, counters and gate RNG — as one Snapshot, deep-copied so
// later steps never alias into it. Persist it with a CheckpointManager
// (or let StepConfig.Checkpoint do both on a cadence).
func Checkpoint(worlds []*World) *Snapshot { return moe.SnapshotWorlds(inners(worlds)) }

// Restore writes a snapshot back into a stack, layer by layer, rolling
// parameters, counters and gate RNG back to the checkpoint point. The
// stack's topology must match the snapshot's layer shapes; mismatches
// fail before anything is written.
func Restore(worlds []*World, s *Snapshot) error { return moe.RestoreWorlds(inners(worlds), s) }

// Recover rebuilds a stack around its permanently failed rank from a
// snapshot: state rolls back to the checkpoint, the dead rank's experts
// are re-assigned (shrink) or re-seeded onto a replacement (rejoin) with
// their restored weights broadcast to the new owners, the strategy
// re-emits its collective chains for the new placement (ESP/Hybrid fall
// back to EP), and the injector's down trigger is stripped so stepping
// resumes at full strength. Post-recovery steps are bit-identical to a
// fresh run restarted from the same checkpoint on the same topology.
func Recover(worlds []*World, s *Snapshot, pol RecoveryPolicy) ([]*RecoveryReport, error) {
	return moe.RecoverWorlds(inners(worlds), s, pol)
}

// Snapshot captures this single world's training state; see Checkpoint.
func (w *World) Snapshot() *WorldState { return w.inner.Snapshot() }

// Restore writes a single-world snapshot back; see Restore.
func (w *World) Restore(ws *WorldState) error { return w.inner.Restore(ws) }

// Recover rebuilds this single world around its failed rank; see Recover.
func (w *World) Recover(ws *WorldState, pol RecoveryPolicy) (*RecoveryReport, error) {
	return w.inner.Recover(ws, pol)
}

// LastRecovery returns the world's most recent recovery report, or nil.
func (w *World) LastRecovery() *RecoveryReport { return w.inner.LastRecovery() }

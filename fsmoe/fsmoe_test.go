package fsmoe

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestNewLayerAllKinds(t *testing.T) {
	for _, gate := range []GateKind{GateGShard, GateSigmoid, GateXMoE, GateEC, GateSoftMoE} {
		for _, order := range []OrderKind{OrderGShard, OrderTutel} {
			for _, exp := range []ExpertKind{ExpertGPT, ExpertMixtral} {
				l, err := NewLayer(LayerConfig{
					M: 8, H: 16, Experts: 4, TopK: 2, CapacityFactor: 0,
					Gate: gate, Order: order, Expert: exp, Seed: 7,
				})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", gate, order, exp, err)
				}
				x := RandTensor(3, 2, 5, 8)
				y, cache, err := l.Forward(x, false)
				if err != nil {
					t.Fatalf("%s/%s/%s forward: %v", gate, order, exp, err)
				}
				if !sameShape(y, x) {
					t.Fatalf("%s/%s/%s: output shape %v", gate, order, exp, y.Shape())
				}
				dx, err := l.Backward(cache, RandTensor(4, 2, 5, 8))
				if err != nil {
					t.Fatalf("%s/%s/%s backward: %v", gate, order, exp, err)
				}
				if !sameShape(dx, x) {
					t.Fatalf("%s/%s/%s: dx shape %v", gate, order, exp, dx.Shape())
				}
			}
		}
	}
}

func sameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := 0; i < a.Rank(); i++ {
		if a.Dim(i) != b.Dim(i) {
			return false
		}
	}
	return true
}

func TestNewLayerDefaults(t *testing.T) {
	l, err := NewLayer(LayerConfig{M: 8, H: 16, Experts: 2, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Gate().Name() != "gshard" {
		t.Fatalf("default gate = %s", l.Gate().Name())
	}
	if len(l.Params()) == 0 {
		t.Fatal("no params")
	}
}

func TestNewLayerRejectsUnknownKinds(t *testing.T) {
	if _, err := NewLayer(LayerConfig{M: 8, H: 16, Experts: 2, TopK: 1, Gate: "bogus"}); err == nil {
		t.Fatal("unknown gate accepted")
	}
	if _, err := NewLayer(LayerConfig{M: 8, H: 16, Experts: 2, TopK: 1, Order: "bogus"}); err == nil {
		t.Fatal("unknown order accepted")
	}
	if _, err := NewLayer(LayerConfig{M: 8, H: 16, Experts: 2, TopK: 1, Expert: "bogus"}); err == nil {
		t.Fatal("unknown expert accepted")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	mk := func() *Tensor {
		l, err := NewLayer(LayerConfig{M: 8, H: 16, Experts: 4, TopK: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		y, _, err := l.Forward(RandTensor(5, 6, 8), false)
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	if !mk().AllClose(mk(), 0) {
		t.Fatal("same seed must reproduce outputs exactly")
	}
}

// customGate verifies user extensions satisfy the public contracts.
type customGate struct{ inner Gate }

func (g *customGate) Name() string { return "custom" }
func (g *customGate) Route(x *Tensor, train bool) (*DispatchPlan, *RouteCache, error) {
	return g.inner.Route(x, train)
}
func (g *customGate) Backward(rc *RouteCache, pg *PlanGrad) *Tensor {
	return g.inner.Backward(rc, pg)
}
func (g *customGate) Params() []*Param { return g.inner.Params() }

func TestCustomGatePluggable(t *testing.T) {
	base, err := NewLayer(LayerConfig{M: 8, H: 16, Experts: 2, TopK: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayer(LayerConfig{
		M: 8, H: 16, Experts: 2, TopK: 1, Seed: 5,
		CustomGate: &customGate{inner: base.Gate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Gate().Name() != "custom" {
		t.Fatal("custom gate not installed")
	}
	if _, _, err := l.Forward(RandTensor(2, 4, 8), false); err != nil {
		t.Fatal(err)
	}
}

func TestHooksThroughPublicAPI(t *testing.T) {
	fired := 0
	l, err := NewLayer(LayerConfig{
		M: 8, H: 16, Experts: 2, TopK: 1, Seed: 3,
		Hooks: []Hooks{{
			BeforeMoeStart: func(x *Tensor) *Tensor { fired++; return x },
			BeforeMoeEnd:   func(x *Tensor) *Tensor { fired++; return x },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Forward(RandTensor(1, 3, 8), false); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("hooks fired %d times", fired)
	}
}

func TestSimulationFacade(t *testing.T) {
	a := TestbedA()
	spec := GPT2XLMoE(a)
	times, err := CompareSystems(a, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(AllSystems()) {
		t.Fatalf("times for %d systems", len(times))
	}
	sp := Speedups(times, SystemDSMoE)
	if sp[SystemFSMoE] <= 1 {
		t.Fatalf("FSMoE speedup %v", sp[SystemFSMoE])
	}
	one, err := SimulateModel(a, spec, SystemFSMoE)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one-times[SystemFSMoE]) > 1e-9 {
		t.Fatal("SimulateModel disagrees with CompareSystems")
	}
}

func TestSimulateLayerFacade(t *testing.T) {
	a := TestbedA()
	cfg := ConfigGrid(a)[0]
	res, err := SimulateLayer(a, cfg, SystemFSMoE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || res.Trace == nil {
		t.Fatal("bad layer simulation result")
	}
}

func TestProfileFacade(t *testing.T) {
	pm, err := Profile(TestbedB())
	if err != nil {
		t.Fatal(err)
	}
	if pm.A2A.R2 < 0.99 {
		t.Fatalf("A2A fit R2 = %v", pm.A2A.R2)
	}
}

func TestPPFacade(t *testing.T) {
	a := TestbedA()
	times, err := CompareSystemsPP(a, Mixtral7B(a), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(times[SystemFSMoE] < times[SystemDSMoE]) {
		t.Fatal("FSMoE should beat DS-MoE under PP")
	}
}

func TestOptimalDegreeFacade(t *testing.T) {
	a := TestbedA()
	s, err := CanonicalScenario(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := LayerVolumes(ConfigGrid(a)[100], s)
	fwd := OptimalDegree(a, v, 0, false)
	bwd := OptimalDegree(a, v, 0, true)
	if fwd.R < 1 || bwd.R < 1 {
		t.Fatalf("degrees: %d / %d", fwd.R, bwd.R)
	}
}

func TestTensorHelpers(t *testing.T) {
	z := NewTensor(2, 3)
	if tensor.Sum(z) != 0 {
		t.Fatal("NewTensor not zeroed")
	}
	r := RandTensor(1, 2, 3)
	if tensor.Sum(tensor.Mul(r, r)) == 0 {
		t.Fatal("RandTensor degenerate")
	}
}

package fsmoe

import (
	"errors"
	"os"
	"testing"
)

// TestRecoveryEndToEnd drives the whole public fault-tolerance surface:
// periodic checkpoints through StepConfig, a permanent rank kill under
// the seeded injector, elastic recovery from the latest snapshot, and
// bit-identical continued training versus a reference run restarted from
// the same checkpoint on the surviving topology.
func TestRecoveryEndToEnd(t *testing.T) {
	x := RandTensor(121, 96, 32)
	dy := RandTensor(122, 96, 32)
	mgr := &CheckpointManager{Dir: t.TempDir(), Keep: 3}
	cfg := StepConfig{LR: 0.02, ChunkBytes: 64 << 10}

	ws := syncTestStack(t, 2, 4)
	ckptCfg := cfg
	ckptCfg.Checkpoint = mgr
	for s := 0; s < 2; s++ {
		if _, err := StepStack(ws, x, dy, ckptCfg); err != nil {
			t.Fatal(err)
		}
	}

	// Kill rank 1; the step survives degraded, then the stack recovers.
	ws[0].SetFaultPlan(NewFaultPlan(FaultSpec{Seed: 7, Down: &FaultDown{Rank: 1, Kind: KindExperts}}))
	res, err := StepStack(ws, x, dy, cfg)
	if err != nil {
		t.Fatalf("degraded step must complete, got %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("rank-down never fired")
	}
	snap, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Recover(ws, snap, RecoveryPolicy{Mode: RecoverShrink})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.NewRanks != 2 || rep.RecoveryMS <= 0 || len(rep.MovedExperts) == 0 {
			t.Fatalf("recovery report = %+v, want 4→2 shrink with moved experts and measured MTTR", rep)
		}
	}
	if lr := ws[0].LastRecovery(); lr == nil || lr.DownRank != 1 {
		t.Fatalf("LastRecovery = %+v, want the rank-1 rebuild", lr)
	}

	// Reference: a fresh 2-rank stack restored from the same checkpoint.
	ref := syncTestStack(t, 2, 2)
	if err := Restore(ref, snap); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		got, err := StepStack(ws, x, dy, cfg)
		if err != nil {
			t.Fatalf("post-recovery step %d: %v", s, err)
		}
		want, err := StepStack(ref, x, dy, cfg)
		if err != nil {
			t.Fatalf("reference step %d: %v", s, err)
		}
		for r := range want.RankParams {
			for k := range want.RankParams[r] {
				if got.RankParams[r][k] != want.RankParams[r][k] {
					t.Fatalf("step %d: rank %d param %d diverges from reference restart", s, r, k)
				}
			}
		}
	}
}

// TestRecoveryCorruptCheckpoint: a damaged snapshot file surfaces the
// typed corruption error through the facade.
func TestRecoveryCorruptCheckpoint(t *testing.T) {
	ws := syncTestStack(t, 1, 4)
	mgr := &CheckpointManager{Dir: t.TempDir()}
	path, err := mgr.Save(Checkpoint(ws))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.LoadLatest(); !errors.Is(err, ErrCheckpointChecksum) {
		t.Fatalf("corrupt checkpoint load = %v, want ErrCheckpointChecksum", err)
	}
	empty := &CheckpointManager{Dir: t.TempDir()}
	if _, err := empty.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir Latest = %v, want ErrNoCheckpoint", err)
	}
}

package fsmoe

import (
	"fmt"

	"repro/internal/moe"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Re-exported sub-module interfaces, so user code can implement custom
// gates, orders, experts and dispatchers against the same contracts the
// built-ins use (§3.3's CustomizedExpert / CustomizedCallback pattern).
type (
	// Gate is the routing sub-module contract.
	Gate = moe.Gate
	// Order is the data-layout sub-module contract.
	Order = moe.Order
	// Expert is the expert-network contract.
	Expert = moe.Expert
	// ExpertCache is the opaque forward cache an Expert hands to Backward.
	ExpertCache = moe.ExpertCache
	// Dispatcher is the Dispatch/Combine sub-module contract.
	Dispatcher = moe.Dispatcher
	// Hooks carries the six non-invasive extension points of §3.1.
	Hooks = moe.Hooks
	// DispatchPlan is a gate's routing decision.
	DispatchPlan = moe.DispatchPlan
	// RouteCache is the gate's forward cache.
	RouteCache = moe.RouteCache
	// PlanGrad is the routing-weight gradient fed back to gates.
	PlanGrad = moe.PlanGrad
	// Param is one trainable parameter with its gradient.
	Param = moe.Param
	// GateConfig carries shared routing hyperparameters.
	GateConfig = moe.GateConfig
	// Tensor is the dense CPU tensor all modules exchange.
	Tensor = tensor.Tensor
	// LayerCache is a layer's forward cache.
	LayerCache = moe.LayerCache
)

// GateKind names a built-in gating function.
type GateKind string

// The four pre-implemented routing functions of §3.1 plus expert choice,
// and the deterministic Zipf measurement gate (skewed load on demand for
// telemetry and load-balancing experiments).
const (
	GateGShard  GateKind = "gshard"
	GateSigmoid GateKind = "sigmoid"
	GateXMoE    GateKind = "xmoe"
	GateEC      GateKind = "ec"
	GateSoftMoE GateKind = "softmoe"
	GateZipf    GateKind = "zipf"
)

// OrderKind names a built-in ordering function.
type OrderKind string

// The two pre-implemented ordering functions of §3.1.
const (
	OrderGShard OrderKind = "gshard-einsum"
	OrderTutel  OrderKind = "tutel-sparse"
)

// ExpertKind names a built-in expert architecture.
type ExpertKind string

// The two pre-implemented expert networks of §3.1.
const (
	ExpertGPT     ExpertKind = "gpt-ffn"
	ExpertMixtral ExpertKind = "mixtral-ffn"
)

// LayerConfig assembles an MoE layer from named sub-modules. CustomGate,
// CustomOrder and CustomExperts override the respective Kind fields when
// non-nil, which is how user-defined implementations plug in.
type LayerConfig struct {
	M              int     // token embedding size
	H              int     // expert hidden size
	Experts        int     // number of experts E
	TopK           int     // experts per token k
	CapacityFactor float64 // f; 0 encodes f=∗ (no token dropping)

	Gate   GateKind
	Order  OrderKind
	Expert ExpertKind

	// Gate-specific knobs.
	SlotsPerExpert int     // SoftMoE slots per expert (default 1)
	XMoELowRank    int     // X-MoE projection rank (default M/8)
	XMoETau        float64 // X-MoE temperature (default 0.3)
	ZipfSkew       float64 // Zipf gate skew exponent s (default 1.0; negative routes uniformly)

	Seed  uint64 // parameter initialization seed (default 1)
	Hooks []Hooks

	CustomGate    Gate
	CustomOrder   Order
	CustomExperts []Expert
	Dispatcher    Dispatcher // nil = single-device identity
}

// Layer is a fully assembled MoE layer.
type Layer struct {
	inner *moe.MOELayer
	cfg   LayerConfig // retained for NewWorld's Algorithm-1 volume derivation
}

// NewLayer validates the configuration and assembles the layer.
func NewLayer(cfg LayerConfig) (*Layer, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := xrand.New(cfg.Seed)
	gcfg := moe.GateConfig{Experts: cfg.Experts, TopK: cfg.TopK, Factor: cfg.CapacityFactor}

	gate := cfg.CustomGate
	var err error
	if gate == nil {
		switch cfg.Gate {
		case GateGShard, "":
			gate, err = moe.NewGShardGate(gcfg, cfg.M, rng)
		case GateSigmoid:
			gate, err = moe.NewSigmoidGate(gcfg, cfg.M, rng)
		case GateXMoE:
			gate, err = moe.NewXMoEGate(gcfg, cfg.M, cfg.XMoELowRank, cfg.XMoETau, rng)
		case GateEC:
			gate, err = moe.NewECGate(gcfg, cfg.M, rng)
		case GateSoftMoE:
			slots := cfg.SlotsPerExpert
			if slots <= 0 {
				slots = 1
			}
			gate, err = moe.NewSoftMoEGate(gcfg, cfg.M, slots, rng)
		case GateZipf:
			skew := cfg.ZipfSkew
			if skew == 0 {
				skew = 1.0
			}
			gate, err = moe.NewZipfGate(gcfg, cfg.M, skew, cfg.Seed)
		default:
			return nil, fmt.Errorf("fsmoe: unknown gate kind %q", cfg.Gate)
		}
		if err != nil {
			return nil, err
		}
	}

	order := cfg.CustomOrder
	if order == nil {
		switch cfg.Order {
		case OrderTutel, "":
			order = moe.TutelOrder{}
		case OrderGShard:
			order = moe.GShardOrder{}
		default:
			return nil, fmt.Errorf("fsmoe: unknown order kind %q", cfg.Order)
		}
	}

	experts := cfg.CustomExperts
	if experts == nil {
		experts = make([]Expert, cfg.Experts)
		for i := range experts {
			var e Expert
			switch cfg.Expert {
			case ExpertGPT, "":
				e, err = moe.NewGPTFFN(cfg.M, cfg.H, rng)
			case ExpertMixtral:
				e, err = moe.NewMixtralFFN(cfg.M, cfg.H, rng)
			default:
				return nil, fmt.Errorf("fsmoe: unknown expert kind %q", cfg.Expert)
			}
			if err != nil {
				return nil, err
			}
			experts[i] = e
		}
	}

	inner, err := moe.NewMOELayer(moe.LayerConfig{
		M:          cfg.M,
		Gate:       gate,
		Order:      order,
		Dispatcher: cfg.Dispatcher,
		Experts:    experts,
		Hooks:      cfg.Hooks,
	})
	if err != nil {
		return nil, err
	}
	return &Layer{inner: inner, cfg: cfg}, nil
}

// Forward runs the layer on x, shaped (B, L, M) or (N, M). train enables
// training-only gate behaviour (GShard's noisy gating).
func (l *Layer) Forward(x *Tensor, train bool) (*Tensor, *LayerCache, error) {
	return l.inner.Forward(x, train)
}

// Backward propagates dy, accumulating every parameter gradient, and
// returns the input gradient.
func (l *Layer) Backward(cache *LayerCache, dy *Tensor) (*Tensor, error) {
	return l.inner.Backward(cache, dy)
}

// Params returns all trainable parameters (gate + experts).
func (l *Layer) Params() []*Param { return l.inner.Params() }

// ZeroGrad clears every parameter gradient.
func (l *Layer) ZeroGrad() { l.inner.ZeroGrad() }

// Gate exposes the layer's gate (useful for custom inspection).
func (l *Layer) Gate() Gate { return l.inner.Gate() }

// NewTensor allocates a zero tensor; RandTensor fills one with N(0,1)
// values from the given seed. They keep example code free of internal
// imports.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// GetTensor returns a zero-filled tensor from the shared buffer free-list;
// PutTensor returns it. The single-owner rule applies: Put a tensor at most
// once, only if it came from GetTensor, and only when no view of it is
// still live (see the internal/tensor package docs). Custom experts and
// hooks use these to keep their transients off the allocator, like the
// built-in sub-modules do.
func GetTensor(shape ...int) *Tensor { return tensor.Get(shape...) }

// PutTensor releases a GetTensor buffer back to the free-list, at most once
// per GetTensor. It is a safe no-op for tensors of any other origin.
func PutTensor(t *Tensor) { tensor.Put(t) }

// SetComputeWorkers overrides the width of the shared worker pool that
// parallelizes expert execution, attention heads and large GEMMs; n <= 0
// restores the default (GOMAXPROCS). Width never changes results: work is
// sharded so no float accumulation is reordered.
func SetComputeWorkers(n int) { tensor.SetWorkers(n) }

// WorkerPool is a scoped tensor worker pool with a fixed width, the unit
// of the executable World's resource governance. Custom ChunkedExpert /
// ShardedExpert implementations receive one in BeginChunked/BeginSharded
// and should route their GEMMs through its MatMul*Into methods; a nil
// *WorkerPool designates the shared default pool.
type WorkerPool = tensor.Pool

// NewWorkerPool returns a scoped pool of fixed width n (at least 1). Its
// goroutines start lazily; Close releases them.
func NewWorkerPool(n int) *WorkerPool { return tensor.NewPool(n) }

// SetPoolDebug toggles free-list debug mode: Put/PutTensor on a view then
// panics instead of silently no-oping, which pins down buffer-ownership
// bugs in custom sub-modules.
func SetPoolDebug(on bool) { tensor.SetPoolDebug(on) }

// RandTensor returns a tensor of standard-normal values.
func RandTensor(seed uint64, shape ...int) *Tensor {
	return tensor.RandN(xrand.New(seed), 1, shape...)
}

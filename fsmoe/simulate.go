package fsmoe

import (
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/topology"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// Re-exported scheduling vocabulary.
type (
	// Cluster is a testbed description.
	Cluster = topology.Cluster
	// Scenario is a parallelism layout on a cluster.
	Scenario = topology.Scenario
	// System names a scheduling system.
	System = core.System
	// Models is the fitted performance-model set the scheduler consumes.
	Models = core.Models
	// Volumes describes one generalized layer's work.
	Volumes = core.Volumes
	// LayerSpec is one layer of a scheduled model.
	LayerSpec = core.LayerSpec
	// BuildOptions tunes schedule construction.
	BuildOptions = core.BuildOptions
	// IterationResult is one simulated training iteration.
	IterationResult = core.IterationResult
	// ModelSpec is a real-world model preset.
	ModelSpec = workload.ModelSpec
	// WorkloadConfig is one Table 4 layer configuration.
	WorkloadConfig = workload.Config
	// PerfModels is a profiled model set with fit quality.
	PerfModels = perfmodel.ClusterModels
	// DegreeResult is Algorithm 1's output.
	DegreeResult = core.DegreeResult
	// GarPlan is the adaptive gradient-partitioning outcome (§5).
	GarPlan = core.GarPlan
)

// The six scheduling systems of §6.
const (
	SystemDSMoE         = core.SystemDSMoE
	SystemTutel         = core.SystemTutel
	SystemTutelImproved = core.SystemTutelImproved
	SystemLina          = core.SystemLina
	SystemFSMoENoIIO    = core.SystemFSMoENoIIO
	SystemFSMoE         = core.SystemFSMoE
)

// AllSystems lists every scheduler in evaluation order.
func AllSystems() []System { return core.AllSystems() }

// TestbedA returns the paper's 48-GPU cluster preset (6 × 8 A6000).
func TestbedA() *Cluster { return topology.TestbedA() }

// TestbedB returns the paper's 32-GPU cluster preset (8 × 4 2080Ti).
func TestbedB() *Cluster { return topology.TestbedB() }

// GPT2XLMoE, Mixtral7B and Mixtral22B are the §6.4 model presets.
func GPT2XLMoE(c *Cluster) ModelSpec  { return workload.GPT2XLMoE(c) }
func Mixtral7B(c *Cluster) ModelSpec  { return workload.Mixtral7B(c) }
func Mixtral22B(c *Cluster) ModelSpec { return workload.Mixtral22B(c) }

// ConfigGrid returns the Table 4 sweep (1458 configurations) for a testbed.
func ConfigGrid(c *Cluster) []WorkloadConfig { return workload.Grid(c) }

// Profile runs the Fig. 5 microbenchmark-and-fit workflow on a testbed and
// returns the fitted models with their R².
func Profile(c *Cluster) (*PerfModels, error) { return perfmodel.ProfileCluster(c) }

// ModelsOf returns the exact scheduler models for a testbed (what a
// perfect profiling run recovers).
func ModelsOf(c *Cluster) Models { return core.ModelsFromCluster(c) }

// CanonicalScenario builds the §4 layout (MP = ESP = one node) with npp
// pipeline stages (0 or 1 for none).
func CanonicalScenario(c *Cluster, npp int) (*Scenario, error) {
	return topology.CanonicalScenario(c, npp)
}

// LayerVolumes derives scheduling volumes for one Table 4 configuration.
func LayerVolumes(cfg WorkloadConfig, s *Scenario) Volumes {
	return workload.VolumesFor(cfg, s)
}

// SimulateLayer runs one configured generalized layer (the Table 5
// experiment unit) under a system and returns the iteration result,
// including the discrete-event trace for Gantt rendering.
func SimulateLayer(c *Cluster, cfg WorkloadConfig, sys System) (*IterationResult, error) {
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		return nil, err
	}
	m := core.ModelsFromCluster(c)
	return m.SimulateSingleLayer(workload.VolumesFor(cfg, s), sys, core.BuildOptions{})
}

// SimulateModel runs a full model iteration under a system.
func SimulateModel(c *Cluster, spec ModelSpec, sys System) (float64, error) {
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		return 0, err
	}
	m := core.ModelsFromCluster(c)
	r, err := trainsim.Iteration(m, spec, s, sys, core.BuildOptions{})
	if err != nil {
		return 0, err
	}
	return r.TimeMS, nil
}

// CompareSystems runs every system on the model and returns iteration
// times in milliseconds keyed by system.
func CompareSystems(c *Cluster, spec ModelSpec) (map[System]float64, error) {
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		return nil, err
	}
	return trainsim.Compare(core.ModelsFromCluster(c), spec, s, core.BuildOptions{})
}

// CompareSystemsPP is CompareSystems with GPipe pipeline parallelism.
func CompareSystemsPP(c *Cluster, spec ModelSpec, npp, microbatches int) (map[System]float64, error) {
	s, err := topology.CanonicalScenario(c, npp)
	if err != nil {
		return nil, err
	}
	return trainsim.ComparePP(core.ModelsFromCluster(c), spec, s, npp, microbatches, core.BuildOptions{})
}

// Speedups converts absolute times into ratios over a baseline.
func Speedups(times map[System]float64, base System) map[System]float64 {
	return trainsim.Speedups(times, base)
}

// SimulateLayerPlan returns FSMoE's adaptive gradient partitioning for a
// model (§5): per-layer MoE-window and dense-window byte assignments plus
// the exposed tail.
func SimulateLayerPlan(c *Cluster, spec ModelSpec) (*GarPlan, error) {
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		return nil, err
	}
	m := core.ModelsFromCluster(c)
	res, err := m.SimulateIteration(spec.LayerSpecs(s), core.SystemFSMoE, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	return res.Gar, nil
}

// OptimalDegree exposes Algorithm 1 directly: the pipeline degree for a
// layer's volumes with a gradient-aggregation budget tgar (ms), per phase.
func OptimalDegree(c *Cluster, v Volumes, tgar float64, backward bool) DegreeResult {
	m := core.ModelsFromCluster(c)
	phase := core.Forward
	if backward {
		phase = core.Backward
	}
	return m.FindOptimalPipelineDegree(v, tgar, phase, 16)
}

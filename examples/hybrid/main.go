// Hybrid: the nested EP×ESP strategy. Four ranks split into two EP
// groups of two ESP shard members each: dispatch/combine AlltoAll runs
// between groups on the inter stream while each group's AllGather /
// ReduceScatter stages run on its own intra stream — one schedule
// carrying both collective families, bit-identical to the single-process
// layer. The group size is a tuning knob: g=1 degenerates to pure EP and
// g=ranks to pure ESP (the runtime delegates, so the edges ARE the pure
// strategies), and leaving GroupSize unset lets the 2-D Algorithm-1 grid
// over (group size × pipeline degree) pick it.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/fsmoe"
)

const (
	ranks  = 4
	m, h   = 32, 48
	tokens = 96
)

func layer() *fsmoe.Layer {
	l, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: m, H: h, Experts: 8, TopK: 2, CapacityFactor: 1.25, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func main() {
	x := fsmoe.RandTensor(401, tokens, m)
	dy := fsmoe.RandTensor(402, tokens, m)

	// Reference: the single-process layer.
	ref := layer()
	wantY, cache, err := ref.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	wantDx, err := ref.Backward(cache, dy)
	if err != nil {
		log.Fatal(err)
	}

	// The full group-size axis: g=1 (≡ EP), g=2 (genuinely nested), and
	// g=4 (≡ ESP) — all bit-identical to the reference.
	for _, g := range []int{1, 2, 4} {
		l := layer()
		w, err := fsmoe.NewWorld(l, fsmoe.WorldConfig{
			Ranks: ranks, PipelineDegree: 2, Strategy: fsmoe.StrategyHybrid, GroupSize: g,
		})
		if err != nil {
			log.Fatal(err)
		}
		y, wc, err := w.Forward(x, false)
		if err != nil {
			log.Fatal(err)
		}
		dx, err := w.Backward(wc, dy)
		if err != nil {
			log.Fatal(err)
		}
		if y.MaxAbsDiff(wantY) != 0 || dx.MaxAbsDiff(wantDx) != 0 {
			log.Fatalf("hybrid g=%d diverged from the reference layer", g)
		}
		kinds := map[string]int{}
		groupStreams := map[string]bool{}
		for _, iv := range w.LastTrace().Intervals {
			kinds[iv.Task.Kind]++
			if strings.HasPrefix(iv.Task.Stream, "intra:g") {
				groupStreams[iv.Task.Stream] = true
			}
		}
		fmt.Printf("hybrid g=%d bit-identical ✓  backward: AlltoAll=%d AllGather=%d ReduceScatter=%d on %d per-group stream(s)\n",
			g, kinds[fsmoe.KindAlltoAll], kinds[fsmoe.KindAllGather], kinds[fsmoe.KindReduceScatter], len(groupStreams))
	}

	// Unset GroupSize: the 2-D Algorithm-1 grid picks the group size and
	// the per-phase pipeline degrees together.
	l := layer()
	w, err := fsmoe.NewWorld(l, fsmoe.WorldConfig{
		Ranks: ranks, Strategy: fsmoe.StrategyHybrid, BatchTokens: tokens,
	})
	if err != nil {
		log.Fatal(err)
	}
	f, b := w.PipelineDegrees()
	fmt.Printf("2-D grid pick for this layer: g=%d, degrees r=%d/%d (of the divisors of %d ranks)\n",
		w.GroupSize(), f, b, ranks)
}

// Customgate: extend the framework without touching it (§3.1's
// "modularization and non-invasive modification").
//
// It plugs in (1) a hand-written hash-routing gate implemented purely
// against the public Gate contract, and (2) a compression hook pair that
// halves dispatch payload precision and restores it afterwards — the
// paper's BeforeDispatchHook/AfterDispatchHook example.
//
//	go run ./examples/customgate
package main

import (
	"fmt"
	"log"
	"math"

	"repro/fsmoe"
)

// hashGate routes each token to expert hash(token index) — the classic
// Hash Layers baseline. It has no parameters and no gradient.
type hashGate struct {
	experts int
	topK    int
}

func (g *hashGate) Name() string { return "hash" }

func (g *hashGate) Params() []*fsmoe.Param { return nil }

func (g *hashGate) Route(x *fsmoe.Tensor, train bool) (*fsmoe.DispatchPlan, *fsmoe.RouteCache, error) {
	n := x.Dim(0)
	capacity := (n*g.topK + g.experts - 1) / g.experts
	plan := &fsmoe.DispatchPlan{Experts: g.experts, Capacity: capacity}
	plan.SlotToken = make([][]int, g.experts)
	plan.SlotWeight = make([][]float64, g.experts)
	for e := 0; e < g.experts; e++ {
		plan.SlotToken[e] = make([]int, capacity)
		for s := range plan.SlotToken[e] {
			plan.SlotToken[e][s] = -1
		}
		plan.SlotWeight[e] = make([]float64, capacity)
	}
	next := make([]int, g.experts)
	for t := 0; t < n; t++ {
		for j := 0; j < g.topK; j++ {
			e := (t*2654435761 + j) % g.experts
			if next[e] >= capacity {
				plan.Dropped++
				continue
			}
			plan.SlotToken[e][next[e]] = t
			plan.SlotWeight[e][next[e]] = 1.0 / float64(g.topK)
			next[e]++
		}
	}
	return plan, &fsmoe.RouteCache{X: x, Plan: plan}, nil
}

func (g *hashGate) Backward(rc *fsmoe.RouteCache, pg *fsmoe.PlanGrad) *fsmoe.Tensor {
	// Hash routing is non-parametric: no gradient flows through the gate.
	return fsmoe.NewTensor(rc.X.Shape()...)
}

// quantize emulates fp16-style compression by rounding mantissas — a
// stand-in for the communication-compression hooks of §3.1.
func quantize(x *fsmoe.Tensor) *fsmoe.Tensor {
	d := x.Data()
	for i, v := range d {
		d[i] = math.Round(v*1024) / 1024
	}
	return x
}

func main() {
	const experts = 4
	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: 32, H: 64, Experts: experts, TopK: 2,
		CustomGate: &hashGate{experts: experts, topK: 2},
		Hooks: []fsmoe.Hooks{{
			BeforeDispatch: func(x *fsmoe.Tensor) *fsmoe.Tensor {
				fmt.Println("hook: compressing dispatch payload")
				return quantize(x)
			},
			AfterDispatch: func(x *fsmoe.Tensor) *fsmoe.Tensor {
				fmt.Println("hook: decompressing on the expert side")
				return x
			},
		}},
		Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	x := fsmoe.RandTensor(5, 16, 32) // 16 tokens
	y, _, err := layer.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom gate %q routed 16 tokens through %d experts -> output %v\n",
		layer.Gate().Name(), experts, y.Shape())
}

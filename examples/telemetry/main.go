// Telemetry: step a Zipf-skew-routed multi-rank world with a metrics
// sink attached, print the structured StepMetrics the runtime emits —
// overlap ratio, per-expert load with utilization entropy and imbalance,
// fault/retry tallies — fold them into a live registry, and export the
// measured backward plan as a Chrome trace_event file that loads in
// Perfetto or chrome://tracing.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/fsmoe"
)

func main() {
	const (
		ranks  = 4
		m      = 64
		tokens = 256
	)
	// GateZipf routes tokens on a Zipf distribution — deterministic skew,
	// the workload per-expert load metrics exist to expose.
	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: m, H: 128, Experts: 8, TopK: 2, CapacityFactor: 1.25,
		Gate: fsmoe.GateZipf, ZipfSkew: 1.1, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A registry sink folds every step's metrics into live instruments;
	// a SinkFunc can sit beside it for custom handling. Both see each
	// step exactly once.
	reg := fsmoe.NewTelemetry()
	world, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{
		Ranks: ranks, PipelineDegree: 2, BatchTokens: tokens,
		Sink: fsmoe.NewRegistrySink(reg),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	x := fsmoe.RandTensor(7, tokens, m)
	dy := fsmoe.RandTensor(8, tokens, m)
	var lastTraces []*fsmoe.Trace
	for step := 0; step < 3; step++ {
		res, err := world.Step(x, dy, fsmoe.StepConfig{LR: 0.01})
		if err != nil {
			log.Fatal(err)
		}
		sm := res.Metrics
		fmt.Printf("step %d (%s): wall %.1f ms, overlap %.2f (serial %.1f ms), tail %.1f ms\n",
			sm.Step, sm.Strategy, sm.WallMS(), sm.OverlapRatio, sm.SerialMS, sm.TailMS)
		fmt.Printf("  expert tokens %v  entropy %.3f  imbalance %.2f  dropped %d\n",
			sm.ExpertTokens[0], sm.ExpertEntropy, sm.ExpertImbalance, sm.DroppedTokens)
		lastTraces = res.Traces
	}

	// The registry is a point-in-time snapshot away (and an expvar.Var:
	// expvar.Publish("fsmoe", reg) would serve it on /debug/vars).
	snap := reg.Snapshot()
	fmt.Printf("registry: %d steps recorded, step_ms histogram count %d\n",
		snap.Counters["step_total"], snap.Histograms["step_ms"].Count)

	// Export the last step's measured backward plans as one Chrome
	// trace_event document: one process per rank-trace, one thread row per
	// stream, fault/retry incidents as instant events.
	path := filepath.Join(os.TempDir(), "fsmoe_telemetry_trace.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(lastTraces))
	for i := range names {
		names[i] = fmt.Sprintf("bwd[%d]", i)
	}
	if err := fsmoe.WriteChromeTrace(f, names, lastTraces); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s — load it in Perfetto or chrome://tracing\n", path)
}

// Recovery: survive a permanent rank loss and keep training. A 2-layer
// stack checkpoints every step through the atomic, checksummed manager;
// a seeded injector then kills a rank permanently mid-run; the stack
// recovers from the latest snapshot — state rolled back, the dead rank's
// experts re-placed across the survivors, the strategy's collective
// chains re-emitted for the new topology — and training continues,
// bit-identical to a fresh run restarted from the same checkpoint.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"

	"repro/fsmoe"
)

func main() {
	newStack := func(ranks int) []*fsmoe.World {
		ws := make([]*fsmoe.World, 2)
		for i := range ws {
			layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
				M: 64, H: 128, Experts: 8, TopK: 2, CapacityFactor: 1.2, Seed: uint64(42 + i),
			})
			if err != nil {
				log.Fatal(err)
			}
			w, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{
				Ranks: ranks, PipelineDegree: 2, BatchTokens: 256,
			})
			if err != nil {
				log.Fatal(err)
			}
			ws[i] = w
		}
		return ws
	}

	dir, err := os.MkdirTemp("", "fsmoe-recovery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr := &fsmoe.CheckpointManager{Dir: dir, Keep: 2}

	x := fsmoe.RandTensor(7, 256, 64)
	dy := fsmoe.RandTensor(8, 256, 64)
	cfg := fsmoe.StepConfig{LR: 0.05, ChunkBytes: 64 << 10}

	// 1. Train with periodic checkpoints: every step writes a snapshot of
	// the full training state — parameters, counters, gate RNG — via an
	// atomic temp-file + fsync + rename, checksummed with CRC-64.
	stack := newStack(4)
	ckptCfg := cfg
	ckptCfg.Checkpoint = mgr
	for s := 0; s < 2; s++ {
		res, err := fsmoe.StepStack(stack, x, dy, ckptCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: ok, checkpoint %s\n", s, res.CheckpointPath)
	}

	// 2. Kill rank 1 permanently. The in-flight step survives on the
	// degraded path (tokens re-routed, dead experts frozen) — no abort.
	stack[0].SetFaultPlan(fsmoe.NewFaultPlan(fsmoe.FaultSpec{
		Seed: 5,
		Down: &fsmoe.FaultDown{Rank: 1, Kind: fsmoe.KindExperts},
	}))
	res, err := fsmoe.StepStack(stack, x, dy, cfg)
	if err != nil {
		log.Fatal(err)
	}
	deg := res.Degraded[0]
	fmt.Printf("rank %d down mid-%s: step completed degraded (%d tokens re-routed, %d dropped)\n",
		deg.Rank, deg.Phase, deg.ReroutedTokens, deg.DroppedTokens)

	// 3. Elastic recovery: roll back to the latest checkpoint and shrink
	// onto the surviving ranks. The dead rank's experts are re-assigned
	// and their restored weights broadcast to the new owners; the
	// injector's down trigger is stripped.
	snap, err := mgr.LoadLatest()
	if err != nil {
		log.Fatal(err)
	}
	reports, err := fsmoe.Recover(stack, snap, fsmoe.RecoveryPolicy{Mode: fsmoe.RecoverShrink})
	if err != nil {
		log.Fatal(err)
	}
	rep := reports[0]
	fmt.Printf("recovered: %d→%d ranks, rolled back to step %d, %d experts re-placed, MTTR %.1f ms\n",
		rep.OldRanks, rep.NewRanks, rep.RestoredStep, len(rep.MovedExperts), rep.RecoveryMS)
	fmt.Printf("health after recovery: %v\n", stack[0].Health())

	// 4. Keep training, and prove the headline contract: the recovered run
	// is bit-identical to a reference run restarted from the very same
	// checkpoint on the same surviving topology.
	ref := newStack(rep.NewRanks)
	if err := fsmoe.Restore(ref, snap); err != nil {
		log.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		got, err := fsmoe.StepStack(stack, x, dy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		want, err := fsmoe.StepStack(ref, x, dy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for r := range want.RankParams {
			for k := range want.RankParams[r] {
				if got.RankParams[r][k] != want.RankParams[r][k] {
					log.Fatalf("step %d diverged from the reference restart", s)
				}
			}
		}
	}
	fmt.Println("3 post-recovery steps are bit-identical to a fresh restart from the same checkpoint")
	for _, w := range append(stack, ref...) {
		w.Close()
	}
}

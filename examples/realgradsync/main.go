// Realgradsync: the §5 Gradient-AllReduce running for real. A 3-layer
// MoE stack steps across 4 in-process ranks; the backward pass of each
// layer hides AllReduce slices of the later layers' gradients in its
// inter-stream slack (FSMoE's adaptive plan), and every rank ends the
// step with bit-identical parameters — compared here against the fully
// exposed no-overlap baseline.
//
//	go run ./examples/realgradsync
package main

import (
	"fmt"
	"log"

	"repro/fsmoe"
)

const (
	layers = 3
	ranks  = 4
	m, h   = 32, 48
	tokens = 96
)

func stack() []*fsmoe.World {
	ws := make([]*fsmoe.World, layers)
	for i := range ws {
		layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
			M: m, H: h, Experts: 8, TopK: 2, CapacityFactor: 1.25, Seed: uint64(7 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		// StrategyEP pins the dispatch/combine AlltoAll pipeline, whose
		// inter-stream slack is what the Gantt chart below shows the
		// AllReduce slices filling (see examples/strategies for the other
		// parallel schemes).
		ws[i], err = fsmoe.NewWorld(layer, fsmoe.WorldConfig{
			Ranks: ranks, PipelineDegree: 2, Strategy: fsmoe.StrategyEP,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	return ws
}

func main() {
	x := fsmoe.RandTensor(201, tokens, m)
	dy := fsmoe.RandTensor(202, tokens, m)

	var ref []float64
	for _, strat := range []fsmoe.SyncStrategy{fsmoe.SyncNoOverlap, fsmoe.SyncFSMoE} {
		res, err := fsmoe.StepStack(stack(), x, dy, fsmoe.StepConfig{LR: 0.05, Strategy: strat})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %-16s hidden %6.0f KB  tail %6.0f KB  (%d overlapped slices)\n",
			strat, res.Report.HiddenBytes/1024, res.Report.TailBytes/1024, res.Report.Slices)

		// Every rank must hold the same post-step replica, and both
		// strategies must agree bit for bit.
		for r := 1; r < ranks; r++ {
			for k := range res.RankParams[0] {
				if res.RankParams[r][k] != res.RankParams[0][k] {
					log.Fatalf("rank %d diverged at parameter %d", r, k)
				}
			}
		}
		if ref == nil {
			ref = res.RankParams[0]
		} else {
			for k := range ref {
				if res.RankParams[0][k] != ref[k] {
					log.Fatalf("strategies disagree at parameter %d", k)
				}
			}
			// The last plan in backward order belongs to layer 0 — the one
			// whose slack absorbed the later layers' AllReduce slices.
			fmt.Println("\nlayer 0 backward timeline (AllReduce slices share the inter stream):")
			fmt.Print(res.Traces[len(res.Traces)-1].Gantt(100))
		}
	}
	fmt.Printf("\nall %d ranks hold bit-identical synchronized parameters under both strategies ✓\n", ranks)
}

// Quickstart: build an MoE layer from the public API, run a forward and a
// backward pass on real data, and inspect the routing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/fsmoe"
)

func main() {
	// An 8-expert layer with GShard noisy top-2 routing, Tutel sparse
	// ordering and GPT-style feed-forward experts (§3.1's defaults).
	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M:              64,
		H:              256,
		Experts:        8,
		TopK:           2,
		CapacityFactor: 1.2,
		Gate:           fsmoe.GateGShard,
		Order:          fsmoe.OrderTutel,
		Expert:         fsmoe.ExpertGPT,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A batch of 4 sequences × 32 tokens × 64 features.
	x := fsmoe.RandTensor(7, 4, 32, 64)
	y, cache, err := layer.Forward(x, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward:  input %v -> output %v\n", x.Shape(), y.Shape())

	// Backward with a synthetic output gradient; every gate and expert
	// parameter receives its gradient.
	dy := fsmoe.RandTensor(8, 4, 32, 64)
	dx, err := layer.Backward(cache, dy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backward: dX %v\n", dx.Shape())

	nonzero := 0
	for _, p := range layer.Params() {
		for _, g := range p.G.Data() {
			if g != 0 {
				nonzero++
				break
			}
		}
	}
	fmt.Printf("parameters with gradients: %d / %d\n", nonzero, len(layer.Params()))

	// A plain SGD step, to show the layer trains like any other module.
	const lr = 1e-2
	for _, p := range layer.Params() {
		w, g := p.W.Data(), p.G.Data()
		for i := range w {
			w[i] -= lr * g[i]
		}
	}
	layer.ZeroGrad()
	y2, _, err := layer.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after one SGD step the output changed by max |Δ| = %.4g\n", y.MaxAbsDiff(y2))
}

// Chaos: run the executable multi-rank runtime under seeded fault
// injection — transient collective failures retried with backoff, a
// straggling stream, and finally a permanent rank-down survived in
// degraded mode.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"repro/fsmoe"
)

func main() {
	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: 64, H: 128, Experts: 8, TopK: 2, CapacityFactor: 1.2, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	world, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{
		Ranks: 4, PipelineDegree: 2, BatchTokens: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	x := fsmoe.RandTensor(7, 256, 64)
	dy := fsmoe.RandTensor(8, 256, 64)
	pass := func() (*fsmoe.Tensor, error) {
		layer.ZeroGrad()
		y, cache, err := world.Forward(x, false)
		if err != nil {
			return nil, err
		}
		if _, err := world.Backward(cache, dy); err != nil {
			return nil, err
		}
		return y, nil
	}

	// 1. A clean pass: the fault-free reference.
	ref, err := pass()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean pass: ok")

	// 2. Chaos: transient faults on every collective kind, plus stragglers.
	// Every decision is a pure function of the seed and the task identity,
	// so this run is reproducible under any stream interleaving.
	world.SetFaultPlan(fsmoe.NewFaultPlan(fsmoe.FaultSpec{
		Seed: 11,
		KindProb: map[string]float64{
			fsmoe.KindAlltoAll:      0.25,
			fsmoe.KindAllGather:     0.25,
			fsmoe.KindReduceScatter: 0.25,
		},
		CollectiveProb:       0.2,
		MaxTransientsPerTask: 2, // under the 4-attempt retry budget: recovery guaranteed
		StragglerProb:        0.15,
	}))
	y, err := pass()
	if err != nil {
		log.Fatal(err)
	}
	tr := world.LastTrace() // the backward plan's measured trace
	fmt.Printf("chaos pass: ok — backward plan saw %d faults, %d retries, %d stragglers\n",
		tr.EventCount(fsmoe.EventFault), tr.EventCount(fsmoe.EventRetry), tr.EventCount(fsmoe.EventStraggler))
	for _, ev := range tr.Events {
		fmt.Printf("  [%s] %s kind=%s stream=%s attempt=%d %s\n",
			ev.Type, ev.Label, ev.Kind, ev.Stream, ev.Attempt, ev.Detail)
	}
	if y.MaxAbsDiff(ref) != 0 {
		log.Fatal("chaos pass diverged from the clean pass")
	}
	fmt.Println("chaos pass output is bit-identical to the clean pass")
	fmt.Println("\nbackward schedule under injection (faulted tasks retried in place):")
	fmt.Print(tr.Gantt(100))

	// 3. A permanent rank failure mid-forward: the pass completes degraded
	// instead of aborting — the dead rank's tokens are re-routed into
	// surviving experts' free capacity, dead experts freeze.
	world.SetFaultPlan(fsmoe.NewFaultPlan(fsmoe.FaultSpec{
		Seed: 12,
		Down: &fsmoe.FaultDown{Rank: 2, Kind: fsmoe.KindExperts},
	}))
	if _, err := pass(); err != nil {
		log.Fatal(err)
	}
	deg := world.LastDegraded()
	fmt.Printf("\nrank %d down (%s phase): lost experts %v, %d tokens re-routed, %d dropped, recovery %.1f ms\n",
		deg.Rank, deg.Phase, deg.LostExperts, deg.ReroutedTokens, deg.DroppedTokens, deg.RecoveryMS)
	fmt.Printf("health: %v\n", world.Health())

	// 4. The dead rank stays down until the operator restores it; then the
	// world is back at full strength, bit-identical to the clean pass.
	world.SetFaultPlan(nil)
	world.ResetHealth()
	y2, err := pass()
	if err != nil {
		log.Fatal(err)
	}
	if y2.MaxAbsDiff(ref) != 0 {
		log.Fatal("post-recovery pass diverged from the clean pass")
	}
	fmt.Println("after ResetHealth: full-strength pass restored, bit-identical to the clean pass")
}

// Gradpartition: the §5 co-design in isolation — how FSMoE's adaptive
// gradient partitioning spreads Gradient-AllReduce across a 12-layer
// model's overlappable windows, versus Lina's fixed 30 MB chunks and
// Tutel's fully exposed tail.
//
//	go run ./examples/gradpartition
package main

import (
	"fmt"
	"log"

	"repro/fsmoe"
)

func main() {
	cluster := fsmoe.TestbedA()
	spec := fsmoe.GPT2XLMoE(cluster)
	spec.Layers = 12
	s, err := fsmoe.CanonicalScenario(cluster, 1)
	if err != nil {
		log.Fatal(err)
	}
	v := fsmoe.LayerVolumes(spec.Layer, s)
	fmt.Printf("model: %s × %d layers, %.1f MB of gradients per layer\n\n",
		spec.Name, spec.Layers, v.GradBytes/1e6)

	type row struct {
		sys  fsmoe.System
		time float64
		tail float64
	}
	var rows []row
	for _, sys := range []fsmoe.System{fsmoe.SystemTutel, fsmoe.SystemTutelImproved, fsmoe.SystemLina, fsmoe.SystemFSMoE} {
		res, err := simulate(cluster, spec, sys)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{sys, res.timeMS, res.tailMB})
	}
	fmt.Println("system            iteration_ms   exposed_tail_MB")
	for _, r := range rows {
		fmt.Printf("%-16s %12.1f %15.1f\n", r.sys, r.time, r.tail)
	}

	// Show FSMoE's per-layer assignment: which windows hide which bytes.
	full, err := fsmoe.SimulateLayerPlan(cluster, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFSMoE per-layer gradient placement (MB):")
	fmt.Println("layer   in-MoE-pipeline   with-dense-backward")
	for i := range full.MoEBytes {
		fmt.Printf("%5d %17.1f %21.1f\n", i, full.MoEBytes[i]/1e6, full.DenseBytes[i]/1e6)
	}
	fmt.Printf("exposed tail: %.1f MB of %.1f MB total\n", full.TailBytes/1e6, full.TotalBytes/1e6)
}

type simResult struct {
	timeMS float64
	tailMB float64
}

func simulate(cluster *fsmoe.Cluster, spec fsmoe.ModelSpec, sys fsmoe.System) (simResult, error) {
	s, err := fsmoe.CanonicalScenario(cluster, 1)
	if err != nil {
		return simResult{}, err
	}
	m := fsmoe.ModelsOf(cluster)
	res, err := m.SimulateIteration(spec.LayerSpecs(s), sys, fsmoe.BuildOptions{})
	if err != nil {
		return simResult{}, err
	}
	return simResult{timeMS: res.Total, tailMB: res.Gar.TailBytes / 1e6}, nil
}

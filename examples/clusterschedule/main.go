// Clusterschedule: the systems half of the paper — schedule Mixtral-7B
// training on the simulated 48-GPU Testbed A under all six schedulers,
// print the speedup ladder, and render the FSMoE vs Tutel timelines for a
// single layer (Fig. 3 as ASCII).
//
//	go run ./examples/clusterschedule
package main

import (
	"fmt"
	"log"

	"repro/fsmoe"
)

func main() {
	cluster := fsmoe.TestbedA()
	spec := fsmoe.Mixtral7B(cluster)
	fmt.Printf("cluster: Testbed %s (%d nodes × %d GPUs), model: %s × %d layers\n\n",
		cluster.Name, cluster.Nodes, cluster.GPUsPerNode, spec.Name, spec.Layers)

	times, err := fsmoe.CompareSystems(cluster, spec)
	if err != nil {
		log.Fatal(err)
	}
	speedups := fsmoe.Speedups(times, fsmoe.SystemDSMoE)
	fmt.Println("iteration time and speedup over DeepSpeed-MoE:")
	for _, sys := range fsmoe.AllSystems() {
		fmt.Printf("  %-16s %9.1f ms   %.2fx\n", sys, times[sys], speedups[sys])
	}

	// Zoom into one configured layer: where does the win come from?
	cfg := spec.Layer
	cfg.B = 4
	fmt.Printf("\nsingle layer (%s), Tutel then FSMoE:\n\n", cfg)
	for _, sys := range []fsmoe.System{fsmoe.SystemTutel, fsmoe.SystemFSMoE} {
		res, err := fsmoe.SimulateLayer(cluster, cfg, sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (fwd degree %d, bwd degree %d) ---\n", sys, res.DegFwd[0], res.DegBwd[0])
		fmt.Print(res.Trace.Gantt(100))
		fmt.Println()
	}

	// Algorithm 1 directly: the optimal pipeline degree differs by phase
	// (the §2.3 motivation).
	s, err := fsmoe.CanonicalScenario(cluster, 1)
	if err != nil {
		log.Fatal(err)
	}
	v := fsmoe.LayerVolumes(cfg, s)
	fwd := fsmoe.OptimalDegree(cluster, v, 0, false)
	bwd := fsmoe.OptimalDegree(cluster, v, 0, true)
	fmt.Printf("Algorithm 1: forward degree %d (%v), backward degree %d (%v)\n",
		fwd.R, fwd.Case, bwd.R, bwd.Case)
}

// Strategies: the pluggable parallelism of the executable world. One
// layer runs under expert parallelism (EP: chunked AlltoAll on the inter
// stream) and expert-sharding parallelism (ESP: chunked AllGather /
// ReduceScatter on the intra stream) with bit-identical results, and a
// SoftMoE layer — rejected outright before the strategy API — runs its
// dense plans slot-chunked under StrategyAuto.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"repro/fsmoe"
)

const (
	ranks  = 4
	m, h   = 32, 48
	tokens = 96
)

func hardLayer() *fsmoe.Layer {
	l, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: m, H: h, Experts: 8, TopK: 2, CapacityFactor: 1.25, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func main() {
	x := fsmoe.RandTensor(301, tokens, m)
	dy := fsmoe.RandTensor(302, tokens, m)

	// Reference: the single-process layer.
	ref := hardLayer()
	wantY, cache, err := ref.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	wantDx, err := ref.Backward(cache, dy)
	if err != nil {
		log.Fatal(err)
	}

	// The same layer under both hard-routing strategies: different
	// collectives, different streams, identical bits.
	for _, strat := range []fsmoe.Strategy{fsmoe.StrategyEP, fsmoe.StrategyESP} {
		layer := hardLayer()
		w, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{
			Ranks: ranks, PipelineDegree: 2, Strategy: strat,
		})
		if err != nil {
			log.Fatal(err)
		}
		y, wc, err := w.Forward(x, false)
		if err != nil {
			log.Fatal(err)
		}
		dx, err := w.Backward(wc, dy)
		if err != nil {
			log.Fatal(err)
		}
		if y.MaxAbsDiff(wantY) != 0 || dx.MaxAbsDiff(wantDx) != 0 {
			log.Fatalf("strategy %s diverged from the reference layer", strat)
		}
		kinds := map[string]int{}
		for _, iv := range w.LastTrace().Intervals {
			kinds[iv.Task.Kind]++
		}
		fmt.Printf("strategy %-12s bit-identical ✓  backward collectives: AlltoAll=%d AllGather=%d ReduceScatter=%d\n",
			w.Strategy(), kinds[fsmoe.KindAlltoAll], kinds[fsmoe.KindAllGather], kinds[fsmoe.KindReduceScatter])
	}

	// Dense routing: StrategyAuto resolves SoftMoE to DenseSlots and the
	// plan chunks over expert slots instead of token rows.
	soft, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: m, H: h, Experts: 8, TopK: 1, CapacityFactor: 1,
		Gate: fsmoe.GateSoftMoE, SlotsPerExpert: 3, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := fsmoe.NewWorld(soft, fsmoe.WorldConfig{Ranks: ranks, PipelineDegree: 2})
	if err != nil {
		log.Fatal(err)
	}
	y, _, err := sw.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy %-12s auto-selected for SoftMoE; dense forward output %v ✓\n",
		sw.Strategy(), y.Shape())
}

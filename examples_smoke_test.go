package repro

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun executes every example program end to end — examples
// were previously only compiled, so a runtime regression (a panic, a
// changed API contract, an error exit) went unnoticed. Each must exit 0.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run real passes; skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples found")
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			out, err := exec.Command(goBin, "run", "./"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run ./%s produced no output", dir)
			}
		})
	}
}

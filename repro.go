// Package repro is a from-scratch Go reproduction of "FSMoE: A Flexible
// and Scalable Training System for Sparse Mixture-of-Experts Models"
// (Pan et al., ASPLOS 2025).
//
// The public API lives in repro/fsmoe; the benchmark harness regenerating
// every table and figure of the paper's evaluation lives in
// cmd/fsmoe-bench and in the root-level bench_test.go. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package repro

// Command fsmoe-lint is the repository's static-analysis gate. It is
// built on the standard library alone (go/parser + go/types with the
// source importer) so it runs offline in CI with no module downloads.
//
// Usage:
//
//	fsmoe-lint [packages]
//
// Packages are ./... -style patterns or package directories relative to
// the module root; with no arguments ./... is checked. Exit status: 0
// clean, 1 findings, 2 load or usage error.
//
// Analyzers (see internal/lint):
//
//	poolcheck  — pooled tensors must reach Put or escape on every path;
//	             Put of a View/Slice/Reshape result is an error
//	kindcheck  — raw task-kind/event vocabulary strings are forbidden
//	             outside internal/sim/vocab.go
//	guardcheck — plan-builders must call comm.*Guarded collectives
//
// Findings are suppressed by an explicit
//
//	//fsmoe:allow <analyzer>[,<analyzer>] <reason>
//
// comment on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fsmoe-lint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsmoe-lint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsmoe-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsmoe-lint: %v\n", err)
		os.Exit(2)
	}
	hardErr := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "fsmoe-lint: %s: %v\n", p.Path, te)
			hardErr = true
		}
	}
	if hardErr {
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fsmoe-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// Command fsmoe-sim simulates one configured MoE layer under a chosen
// scheduling system and prints the resulting discrete-event timeline as an
// ASCII Gantt chart — the textual analogue of the paper's Fig. 3.
//
// Usage:
//
//	fsmoe-sim -testbed A -system fsmoe -B 4 -L 1024 -M 1600 -hscale 4 -f 1.2
//	fsmoe-sim -system all        # all six systems side by side
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	testbed := flag.String("testbed", "A", "testbed preset: A or B")
	system := flag.String("system", "all", "dsmoe|tutel|tutel-improved|pipemoe-lina|fsmoe-no-iio|fsmoe|all")
	b := flag.Int("B", 4, "samples per GPU")
	l := flag.Int("L", 1024, "tokens per sample")
	m := flag.Int("M", 1600, "embedding size")
	hscale := flag.Int("hscale", 4, "H = hscale*M")
	nheads := flag.Int("nheads", 16, "attention heads")
	k := flag.Int("k", 2, "top-k experts per token")
	f := flag.Float64("f", 1.2, "capacity factor (0 = f=∗, no dropping)")
	ffn := flag.String("ffn", "simple", "expert type: simple|mixtral")
	width := flag.Int("width", 110, "gantt width in columns")
	flag.Parse()

	// Validate every enumerated flag up front, with the full menu in the
	// error, before any simulation work starts.
	cluster, err := clusterFor(*testbed)
	if err != nil {
		fatal(err)
	}
	systems, err := systemsFor(*system)
	if err != nil {
		fatal(err)
	}
	ffnType, err := ffnFor(*ffn)
	if err != nil {
		fatal(err)
	}
	cfg := workload.Config{B: *b, L: *l, M: *m, NHScale: *hscale, NHeads: *nheads, K: *k, F: *f, FFN: ffnType}
	scenario, err := topology.CanonicalScenario(cluster, 1)
	if err != nil {
		fatal(err)
	}
	models := core.ModelsFromCluster(cluster)
	v := workload.VolumesFor(cfg, scenario)
	fmt.Printf("config %s on testbed %s (N_MP=N_ESP=%d, N_EP=%d)\n", cfg, cluster.Name, scenario.NMP, scenario.NEP)
	fmt.Printf("volumes: a2a=%.1fMB esp=%.1fMB expert=%.2fGMAC grads=%.1fMB\n\n",
		v.NA2A/1e6, v.NAG/1e6, v.ExpMACs/1e9, v.GradBytes/1e6)

	for _, sys := range systems {
		res, err := models.SimulateSingleLayer(v, sys, core.BuildOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("--- %s (fwd r=%d, bwd r=%d) ---\n", sys, res.DegFwd[0], res.DegBwd[0])
		fmt.Print(res.Trace.Gantt(*width))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsmoe-sim:", err)
	os.Exit(1)
}

// clusterFor resolves the -testbed flag.
func clusterFor(name string) (*topology.Cluster, error) {
	switch name {
	case "A", "a":
		return topology.TestbedA(), nil
	case "B", "b":
		return topology.TestbedB(), nil
	default:
		return nil, fmt.Errorf("unknown testbed %q (valid: A, B)", name)
	}
}

// systemsFor resolves the -system flag to the schedulers to run. An
// unknown name fails here with the full menu rather than silently running
// the default scheduler behavior at dispatch time.
func systemsFor(name string) ([]core.System, error) {
	if name == "all" {
		return core.AllSystems(), nil
	}
	for _, sys := range core.AllSystems() {
		if string(sys) == name {
			return []core.System{sys}, nil
		}
	}
	valid := make([]string, 0, len(core.AllSystems())+1)
	for _, sys := range core.AllSystems() {
		valid = append(valid, string(sys))
	}
	valid = append(valid, "all")
	return nil, fmt.Errorf("unknown system %q (valid: %s)", name, strings.Join(valid, ", "))
}

// ffnFor resolves the -ffn flag.
func ffnFor(name string) (workload.FFNType, error) {
	switch name {
	case "simple":
		return workload.FFNSimple, nil
	case "mixtral":
		return workload.FFNMixtral, nil
	default:
		return "", fmt.Errorf("unknown ffn type %q (valid: simple, mixtral)", name)
	}
}

// Command fsmoe-sim simulates one configured MoE layer under a chosen
// scheduling system and prints the resulting discrete-event timeline as an
// ASCII Gantt chart — the textual analogue of the paper's Fig. 3.
//
// Usage:
//
//	fsmoe-sim -testbed A -system fsmoe -B 4 -L 1024 -M 1600 -hscale 4 -f 1.2
//	fsmoe-sim -system all        # all six systems side by side
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	testbed := flag.String("testbed", "A", "testbed preset: A or B")
	system := flag.String("system", "all", "dsmoe|tutel|tutel-improved|pipemoe-lina|fsmoe-no-iio|fsmoe|all")
	b := flag.Int("B", 4, "samples per GPU")
	l := flag.Int("L", 1024, "tokens per sample")
	m := flag.Int("M", 1600, "embedding size")
	hscale := flag.Int("hscale", 4, "H = hscale*M")
	nheads := flag.Int("nheads", 16, "attention heads")
	k := flag.Int("k", 2, "top-k experts per token")
	f := flag.Float64("f", 1.2, "capacity factor (0 = f=∗, no dropping)")
	ffn := flag.String("ffn", "simple", "expert type: simple|mixtral")
	width := flag.Int("width", 110, "gantt width in columns")
	flag.Parse()

	var cluster *topology.Cluster
	switch *testbed {
	case "A", "a":
		cluster = topology.TestbedA()
	case "B", "b":
		cluster = topology.TestbedB()
	default:
		fatal(fmt.Errorf("unknown testbed %q", *testbed))
	}
	ffnType := workload.FFNSimple
	if *ffn == "mixtral" {
		ffnType = workload.FFNMixtral
	}
	cfg := workload.Config{B: *b, L: *l, M: *m, NHScale: *hscale, NHeads: *nheads, K: *k, F: *f, FFN: ffnType}
	scenario, err := topology.CanonicalScenario(cluster, 1)
	if err != nil {
		fatal(err)
	}
	models := core.ModelsFromCluster(cluster)
	v := workload.VolumesFor(cfg, scenario)
	fmt.Printf("config %s on testbed %s (N_MP=N_ESP=%d, N_EP=%d)\n", cfg, cluster.Name, scenario.NMP, scenario.NEP)
	fmt.Printf("volumes: a2a=%.1fMB esp=%.1fMB expert=%.2fGMAC grads=%.1fMB\n\n",
		v.NA2A/1e6, v.NAG/1e6, v.ExpMACs/1e9, v.GradBytes/1e6)

	systems := core.AllSystems()
	if *system != "all" {
		systems = []core.System{core.System(*system)}
	}
	for _, sys := range systems {
		res, err := models.SimulateSingleLayer(v, sys, core.BuildOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("--- %s (fwd r=%d, bwd r=%d) ---\n", sys, res.DegFwd[0], res.DegBwd[0])
		fmt.Print(res.Trace.Gantt(*width))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsmoe-sim:", err)
	os.Exit(1)
}

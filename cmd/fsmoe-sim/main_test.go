package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSystemsFor: every scheduler name resolves to itself, "all" expands
// to the full list, and an unknown name fails listing every valid choice.
func TestSystemsFor(t *testing.T) {
	for _, sys := range core.AllSystems() {
		got, err := systemsFor(string(sys))
		if err != nil || len(got) != 1 || got[0] != sys {
			t.Fatalf("systemsFor(%q) = %v, %v", sys, got, err)
		}
	}
	all, err := systemsFor("all")
	if err != nil || len(all) != len(core.AllSystems()) {
		t.Fatalf("systemsFor(all) = %v, %v", all, err)
	}
	_, err = systemsFor("deepspeed")
	if err == nil {
		t.Fatal("unknown system must be rejected")
	}
	for _, sys := range core.AllSystems() {
		if !strings.Contains(err.Error(), string(sys)) {
			t.Fatalf("error %q does not list %q", err, sys)
		}
	}
}

// TestClusterAndFFNFor cover the remaining enumerated flags.
func TestClusterAndFFNFor(t *testing.T) {
	for _, name := range []string{"A", "a", "B", "b"} {
		if _, err := clusterFor(name); err != nil {
			t.Fatalf("clusterFor(%q): %v", name, err)
		}
	}
	if _, err := clusterFor("C"); err == nil || !strings.Contains(err.Error(), "A, B") {
		t.Fatalf("clusterFor(C) = %v, want error listing A, B", err)
	}
	for _, name := range []string{"simple", "mixtral"} {
		if _, err := ffnFor(name); err != nil {
			t.Fatalf("ffnFor(%q): %v", name, err)
		}
	}
	if _, err := ffnFor("moe"); err == nil {
		t.Fatal("unknown ffn must be rejected")
	}
}

// Command fsmoe-profile runs the §6.2 / Fig. 5 profiling workflow: it
// microbenchmarks each collective and GEMM across the paper's size grid on
// a simulated testbed, fits linear performance models by least squares,
// and prints the coefficients with their R². Optionally it also profiles a
// real CPU GEMM (the online module-profiling path of §3.2).
//
// Usage:
//
//	fsmoe-profile            # both testbeds
//	fsmoe-profile -cpu       # additionally time a real CPU matmul and fit it
//	fsmoe-profile -json      # also write BENCH_profile.json (same cells as stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func main() {
	cpu := flag.Bool("cpu", false, "also profile a real CPU GEMM via wall-clock timing")
	jsonOut := flag.Bool("json", false, "also write the fitted models to BENCH_profile.json")
	flag.Parse()

	var doc *report.Doc
	if *jsonOut {
		doc = report.NewDoc("profile")
	}

	for _, c := range []*topology.Cluster{topology.TestbedA(), topology.TestbedB()} {
		cm, err := perfmodel.ProfileCluster(c)
		if err != nil {
			fatal(err)
		}
		tb := report.NewTable(
			fmt.Sprintf("Testbed %s (%d nodes × %d GPUs)", c.Name, c.Nodes, c.GPUsPerNode),
			"model", "alpha_ms", "beta", "R2", "samples")
		row := func(name string, f perfmodel.Fitted) {
			tb.AddRow(name, fmt.Sprintf("%.3e", f.Alpha), fmt.Sprintf("%.3e", f.Beta),
				fmt.Sprintf("%.6f", f.R2), f.N)
		}
		row("AlltoAll (2DH)", cm.A2A)
		row("AlltoAll (flat)", cm.A2AFlat)
		row(sim.KindAllGather, cm.AG)
		row(sim.KindReduceScatter, cm.RS)
		row(sim.KindAllReduce, cm.AR)
		row("GEMM", cm.GEMM)
		fmt.Println(tb)
		if doc != nil {
			doc.AddTable(tb)
		}
	}

	if *cpu {
		fmt.Println("Profiling real CPU GEMM (n×n @ n×n), fitting t = α + β·n³ ...")
		rng := xrand.New(1)
		sizes := []int{32, 48, 64, 96, 128}
		cubes := make([]int, len(sizes))
		mats := map[int][2]*tensor.Tensor{}
		for i, n := range sizes {
			cubes[i] = n * n * n
			mats[n*n*n] = [2]*tensor.Tensor{tensor.RandN(rng, 1, n, n), tensor.RandN(rng, 1, n, n)}
		}
		fit, err := perfmodel.ProfileFunc(cubes, 5, func(cube int) {
			ab := mats[cube]
			tensor.MatMul(ab[0], ab[1])
		})
		if err != nil {
			fatal(err)
		}
		line := fmt.Sprintf("cpu-gemm: alpha=%.4f ms, beta=%.3e ms/MAC, R2=%.4f", fit.Alpha, fit.Beta, fit.R2)
		fmt.Println(line)
		if doc != nil {
			doc.AddNote(line)
		}
	}

	if doc != nil {
		path, err := doc.WriteFile()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsmoe-profile:", err)
	os.Exit(1)
}

package main

import (
	"fmt"
	goruntime "runtime"

	"repro/fsmoe"
	"repro/internal/report"
	"repro/internal/runtime"
)

// gradsyncLayers/gradsyncShape configure the executable §5 experiment: a
// stack of L identical MoE layers stepped at R=4 in-process ranks, heavy
// enough that the Gradient-AllReduce tail is a visible share of the step.
const (
	gradsyncLayers = 4
	gradsyncRanks  = 4
	gradsyncM      = 128
	gradsyncH      = 192
	gradsyncE      = 8
	gradsyncTokens = 768
	gradsyncDegree = 2
)

// gradsyncExperiment measures §5 end to end on the executable runtime:
// one training step (backward + gradient sync) of an L-layer stack under
// the three synchronization strategies — fully exposed tail (no-overlap),
// Lina's fixed chunks, and FSMoE's adaptive GarPlan partitioning — each
// both executed for real on the stream runtime and predicted by the
// discrete-event simulator from measured sequential stage durations. The
// FSMoE row should show the smallest measured step: the same AllReduce
// work runs inside the backward pipelines' inter-stream slack instead of
// after them.
func gradsyncExperiment() error {
	fmt.Printf("== gradsync: measured vs simulated §5 Gradient-AllReduce overlap "+
		"(L=%d layers, R=%d ranks, M=%d H=%d E=%d N=%d, r=%d) ==\n",
		gradsyncLayers, gradsyncRanks, gradsyncM, gradsyncH, gradsyncE, gradsyncTokens, gradsyncDegree)

	x := fsmoe.RandTensor(171, gradsyncTokens, gradsyncM)
	dy := fsmoe.RandTensor(172, gradsyncTokens, gradsyncM)

	// Warm the tensor pools and worker fleet once, off the books.
	if _, err := runGradsyncStep(x, dy, fsmoe.SyncNoOverlap, false); err != nil {
		return err
	}

	tb := report.NewTable("one step = backward + gradient sync, ms (forward excluded; identical across strategies)",
		"strategy", "hidden MB", "tail MB", "slices", "sequential", "simulated-pipe", "measured-pipe", "vs no-overlap")
	var baseline float64
	// Best-of-N repetitions absorb GC and scheduler noise; every run steps
	// a fresh identically seeded stack, so the work compared is identical.
	const reps = 3
	best := func(strat fsmoe.SyncStrategy, sequential bool) (*fsmoe.StepResult, error) {
		var b *fsmoe.StepResult
		for i := 0; i < reps; i++ {
			r, err := runGradsyncStep(x, dy, strat, sequential)
			if err != nil {
				return nil, err
			}
			if b == nil || r.StepMS() < b.StepMS() {
				b = r
			}
		}
		return b, nil
	}
	for _, strat := range []fsmoe.SyncStrategy{fsmoe.SyncNoOverlap, fsmoe.SyncLinaFixed, fsmoe.SyncFSMoE} {
		// Sequential execution of the identical step: its per-task durations
		// feed the DES prediction of the pipelined makespan.
		seq, err := best(strat, true)
		if err != nil {
			return err
		}
		predicted := seq.TailMS
		for i, p := range seq.Plans {
			predicted += p.SimulateWith(runtime.Durations(seq.Traces[i])).Makespan
		}
		meas, err := best(strat, false)
		if err != nil {
			return err
		}
		if strat == fsmoe.SyncNoOverlap {
			baseline = meas.StepMS()
		}
		tb.AddRow(string(strat),
			fmt.Sprintf("%.2f", meas.Report.HiddenBytes/(1<<20)),
			fmt.Sprintf("%.2f", meas.Report.TailBytes/(1<<20)),
			meas.Report.Slices+meas.Report.TailSlices,
			fmt.Sprintf("%.1f", seq.StepMS()),
			fmt.Sprintf("%.1f", predicted),
			fmt.Sprintf("%.1f", meas.StepMS()),
			fmt.Sprintf("%.2fx", baseline/meas.StepMS()),
		)
	}
	emit(tb)
	note("simulated-pipe = DES makespan of the same backward plans (AllReduce slices included) with measured sequential stage durations, plus the measured tail")
	if n := goruntime.GOMAXPROCS(0); n < 2 {
		note("note: GOMAXPROCS=%d — streams cannot run in parallel on this machine, so measured-pipe "+
			"cannot realize the overlap; simulated-pipe shows what a multi-core runner achieves.", n)
	}
	return nil
}

// gradsyncStack builds the L-layer stack with fixed seeds, so every
// strategy steps bit-identical initial parameters.
func gradsyncStack() ([]*fsmoe.World, error) {
	ws := make([]*fsmoe.World, gradsyncLayers)
	for i := range ws {
		layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
			M: gradsyncM, H: gradsyncH, Experts: gradsyncE, TopK: 2,
			CapacityFactor: 1.2, Seed: uint64(41 + i),
		})
		if err != nil {
			return nil, err
		}
		// Pin expert parallelism: the §5 comparison is about AllReduce
		// slices contending with dispatch/combine AlltoAll on the inter
		// stream, which only the EP/DenseSlots schedules have (ESP leaves
		// the inter stream to the slices entirely).
		ws[i], err = fsmoe.NewWorld(layer, fsmoe.WorldConfig{
			Ranks: gradsyncRanks, PipelineDegree: gradsyncDegree,
			Strategy: fsmoe.StrategyEP,
		})
		if err != nil {
			return nil, err
		}
	}
	return ws, nil
}

// runGradsyncStep steps a fresh stack under one strategy and executor
// mode. A fresh stack per run keeps the comparisons fair: Step updates
// parameters, and plans are single-shot. Each stack's scoped pools are
// released before the next run so repetitions never measure against the
// previous stack's leftover goroutines.
func runGradsyncStep(x, dy *fsmoe.Tensor, strat fsmoe.SyncStrategy, sequential bool) (*fsmoe.StepResult, error) {
	ws, err := gradsyncStack()
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()
	return fsmoe.StepStack(ws, x, dy, fsmoe.StepConfig{
		LR:         0.01,
		Strategy:   strat,
		ChunkBytes: 1 << 20, // 1 MiB Lina chunks, scaled to the model's ~MB-sized layers
		Slices:     4,
		Sequential: sequential,
	})
}

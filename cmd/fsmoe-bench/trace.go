package main

// -trace: any experiment that executes real stream plans (realpipe, chaos,
// telemetry) contributes its measured traces to one Chrome trace-event
// document, written at exit. Load the file in chrome://tracing or
// Perfetto: one process row group per captured pass, one thread row per
// stream, fault/retry incidents as instant events.

import (
	"fmt"
	"os"

	"repro/fsmoe"
)

// traceCapture collects measured traces for -trace; nil when disabled.
var traceCapture *fsmoe.ChromeTraceBuilder

// enableTraceCapture turns on trace collection for this run.
func enableTraceCapture() { traceCapture = &fsmoe.ChromeTraceBuilder{} }

// captureTrace records one measured trace under name. A no-op when -trace
// is off or the trace is nil, so callers capture unconditionally.
func captureTrace(name string, tr *fsmoe.Trace) {
	if traceCapture != nil && tr != nil {
		traceCapture.AddTrace(name, tr)
	}
}

// writeTraceCapture writes the collected trace_event document to path.
func writeTraceCapture(path string) error {
	if traceCapture == nil {
		return nil
	}
	if traceCapture.Len() == 0 {
		return fmt.Errorf("-trace %s: no measured traces captured (run realpipe, chaos or telemetry)", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := traceCapture.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d trace events)\n", path, traceCapture.Len())
	return nil
}

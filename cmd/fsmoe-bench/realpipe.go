package main

import (
	"fmt"
	goruntime "runtime"

	"repro/fsmoe"
	"repro/internal/report"
	"repro/internal/runtime"
)

// realpipeConfig is one workload the executable runtime measures — the
// real-computable corner of the Table 4 grid (M × H sweep at fixed E,
// comm-heavy vs compute-heavy regimes).
type realpipeConfig struct {
	name    string
	m, h, e int
	tokens  int
	degree  int // pipeline degree r for the fixed-degree comparison
}

func realpipeConfigs() []realpipeConfig {
	return []realpipeConfig{
		{name: "comm-heavy", m: 256, h: 64, e: 8, tokens: 1024, degree: 4},
		{name: "compute-heavy", m: 128, h: 512, e: 8, tokens: 1024, degree: 4},
	}
}

// realpipeStrategies are the hard-routing strategies the executable
// runtime can compare on one workload (DenseSlots routes differently and
// is exercised by the strategies bench instead). The hybrid rows run at
// GroupSize ranks/2 — the genuinely nested schedule; its degenerate group
// sizes are the EP and ESP rows themselves.
func realpipeStrategies() []fsmoe.Strategy {
	return []fsmoe.Strategy{fsmoe.StrategyEP, fsmoe.StrategyESP, fsmoe.StrategyHybrid}
}

// stratCell renders a strategy for a report row, with the hybrid group
// size when there is one.
func stratCell(s fsmoe.Strategy, g int) string {
	if s == fsmoe.StrategyHybrid && g > 0 {
		return fmt.Sprintf("%s(g=%d)", s, g)
	}
	return string(s)
}

// realpipe runs the executable stream runtime for real, per parallel
// strategy: for each workload it executes one forward+backward pass of
// the multi-rank World at R=4 three ways — sequentially (no overlap),
// pipelined on real streams (measured), and through the discrete-event
// simulator fed the measured sequential stage durations (predicted) —
// then sweeps the pipeline degree grid and reports Algorithm 1's chosen
// degree against the measured-optimal one. This is the §4 claim end to
// end: the same schedule artifact is simulated and executed, per
// strategy, and the degree the scheduler picks should track the degree
// that actually wins.
func realpipe() error {
	const ranks = 4
	fmt.Printf("== realpipe: measured vs simulated pipelining on the real-compute path (R=%d in-process ranks) ==\n", ranks)
	tb := report.NewTable("one fwd+bwd pass, ms (sequential = no-overlap baseline)",
		"workload", "strategy", "r", "sequential", "simulated-pipe", "measured-pipe", "speedup")
	for _, cfg := range realpipeConfigs() {
		for _, strat := range realpipeStrategies() {
			row, err := runRealpipe(cfg, ranks, strat)
			if err != nil {
				return err
			}
			tb.AddRow(row...)
		}
	}
	emit(tb)
	note("simulated-pipe = DES makespan of the same stream plan with measured sequential stage durations")

	if err := realpipeDegreeSweep(ranks); err != nil {
		return err
	}
	if err := realpipeHybridGrid(ranks); err != nil {
		return err
	}
	if n := goruntime.GOMAXPROCS(0); n < 2 {
		note("note: GOMAXPROCS=%d — streams cannot run in parallel on this machine, so measured-pipe "+
			"cannot realize the overlap; simulated-pipe shows what a multi-core runner achieves.", n)
	}
	return nil
}

// newRealpipeLayer builds a workload's layer with the fixed seed every
// realpipe-family experiment (including calibrate) shares.
func newRealpipeLayer(cfg realpipeConfig) (*fsmoe.Layer, error) {
	return fsmoe.NewLayer(fsmoe.LayerConfig{
		M: cfg.m, H: cfg.h, Experts: cfg.e, TopK: 2, CapacityFactor: 1.2, Seed: 13,
	})
}

// newRealpipeWorld builds one world for a workload; degree 0 asks
// Algorithm 1. Hybrid worlds run at GroupSize ranks/2, the interior grid
// cell the strategy comparison is about.
func newRealpipeWorld(cfg realpipeConfig, ranks, degree int, strat fsmoe.Strategy) (*fsmoe.Layer, *fsmoe.World, error) {
	return newRealpipeHybridWorld(cfg, ranks, degree, strat, ranks/2)
}

// newRealpipeHybridWorld is newRealpipeWorld with an explicit hybrid
// group size (ignored by the other strategies).
func newRealpipeHybridWorld(cfg realpipeConfig, ranks, degree int, strat fsmoe.Strategy, g int) (*fsmoe.Layer, *fsmoe.World, error) {
	layer, err := newRealpipeLayer(cfg)
	if err != nil {
		return nil, nil, err
	}
	wc := fsmoe.WorldConfig{
		Ranks: ranks, PipelineDegree: degree, Strategy: strat, BatchTokens: cfg.tokens,
	}
	if strat == fsmoe.StrategyHybrid {
		wc.GroupSize = g
	}
	w, err := fsmoe.NewWorld(layer, wc)
	if err != nil {
		return nil, nil, err
	}
	return layer, w, nil
}

// measurePass runs one fwd+bwd pass and returns the summed makespans plus
// the plans/traces of the two phases.
func measurePass(layer *fsmoe.Layer, w *fsmoe.World, x, dy *fsmoe.Tensor) (float64, []*fsmoe.StreamPlan, []*fsmoe.Trace, error) {
	layer.ZeroGrad()
	_, cache, err := w.Forward(x, false)
	if err != nil {
		return 0, nil, nil, err
	}
	plans := []*fsmoe.StreamPlan{w.LastPlan()}
	traces := []*fsmoe.Trace{w.LastTrace()}
	total := w.LastTrace().Makespan
	if _, err = w.Backward(cache, dy); err != nil {
		return 0, nil, nil, err
	}
	plans = append(plans, w.LastPlan())
	traces = append(traces, w.LastTrace())
	total += w.LastTrace().Makespan
	return total, plans, traces, nil
}

// runRealpipe measures one (workload, strategy) pair at the fixed sweep
// degree and returns its report row.
func runRealpipe(cfg realpipeConfig, ranks int, strat fsmoe.Strategy) ([]any, error) {
	layer, w, err := newRealpipeWorld(cfg, ranks, cfg.degree, strat)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	x := fsmoe.RandTensor(71, cfg.tokens, cfg.m)
	dy := fsmoe.RandTensor(72, cfg.tokens, cfg.m)

	// Warm up pools and the worker fleet once.
	if _, _, _, err := measurePass(layer, w, x, dy); err != nil {
		return nil, err
	}

	// Sequential baseline: same plan, no overlap; its per-task durations
	// feed the simulator's prediction of the pipelined makespan.
	w.SetSequential(true)
	seq, plans, traces, err := measurePass(layer, w, x, dy)
	if err != nil {
		return nil, err
	}
	sim := 0.0
	for i, p := range plans {
		sim += p.SimulateWith(runtime.Durations(traces[i])).Makespan
	}

	// Measured pipelined execution.
	w.SetSequential(false)
	pipe, _, ptraces, err := measurePass(layer, w, x, dy)
	if err != nil {
		return nil, err
	}
	for i, phase := range []string{"fwd", "bwd"} {
		if i < len(ptraces) {
			captureTrace(fmt.Sprintf("realpipe %s %s %s", cfg.name, stratCell(strat, w.GroupSize()), phase), ptraces[i])
		}
	}

	return []any{
		fmt.Sprintf("%s M=%d H=%d E=%d N=%d", cfg.name, cfg.m, cfg.h, cfg.e, cfg.tokens),
		stratCell(strat, w.GroupSize()),
		cfg.degree,
		fmt.Sprintf("%.1f", seq),
		fmt.Sprintf("%.1f", sim),
		fmt.Sprintf("%.1f", pipe),
		fmt.Sprintf("%.2fx", seq/pipe),
	}, nil
}

// realpipeDegreeSweep executes every workload × strategy across the
// degree grid and prints Algorithm 1's per-phase choice next to the
// measured-optimal degree.
func realpipeDegreeSweep(ranks int) error {
	degrees := []int{1, 2, 4, 8}
	fmt.Println("== realpipe degree sweep: Algorithm 1's choice vs the measured optimum ==")
	header := []string{"workload", "strategy", "algo1-r(fwd/bwd)"}
	for _, r := range degrees {
		header = append(header, fmt.Sprintf("r=%d", r))
	}
	header = append(header, "best-r")
	tb := report.NewTable("one fwd+bwd pass per degree, ms (measured, pipelined)", header...)
	for _, cfg := range realpipeConfigs() {
		x := fsmoe.RandTensor(73, cfg.tokens, cfg.m)
		dy := fsmoe.RandTensor(74, cfg.tokens, cfg.m)
		for _, strat := range realpipeStrategies() {
			// Algorithm 1's per-phase choice for this workload + strategy.
			_, auto, err := newRealpipeWorld(cfg, ranks, 0, strat)
			if err != nil {
				return err
			}
			autoF, autoB := auto.PipelineDegrees()
			label := stratCell(strat, auto.GroupSize())
			auto.Close()

			row := []any{cfg.name, label, fmt.Sprintf("%d/%d", autoF, autoB)}
			bestR, bestT := 0, 0.0
			for _, r := range degrees {
				layer, w, err := newRealpipeWorld(cfg, ranks, r, strat)
				if err != nil {
					return err
				}
				if _, _, _, err := measurePass(layer, w, x, dy); err != nil { // warmup
					w.Close()
					return err
				}
				t, _, _, err := measurePass(layer, w, x, dy)
				w.Close()
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.1f", t))
				if bestR == 0 || t < bestT {
					bestR, bestT = r, t
				}
			}
			row = append(row, bestR)
			tb.AddRow(row...)
		}
	}
	emit(tb)
	note("algo1-r = Algorithm 1's forward/backward degrees on the strategy-specific volumes (Testbed A models)")
	return nil
}

// realpipeHybridGrid executes every workload across the full 2-D hybrid
// grid — every divisor group size × every pipeline degree — and prints
// the measured cells next to the 2-D Algorithm-1 pick (the group size and
// per-phase degrees a hybrid world with everything unset chooses). The
// g=1 and g=4 rows are the pure EP and ESP schedules, which the hybrid
// runtime delegates to, so the grid's edges double as the strategy
// comparison.
func realpipeHybridGrid(ranks int) error {
	degrees := []int{1, 2, 4, 8}
	fmt.Println("== realpipe hybrid grid: measured (group size × degree) cells vs the 2-D Algorithm-1 pick ==")
	header := []string{"workload", "g"}
	for _, r := range degrees {
		header = append(header, fmt.Sprintf("r=%d", r))
	}
	header = append(header, "best-r")
	tb := report.NewTable("one fwd+bwd pass per cell, ms (measured, pipelined)", header...)
	for _, cfg := range realpipeConfigs() {
		x := fsmoe.RandTensor(75, cfg.tokens, cfg.m)
		dy := fsmoe.RandTensor(76, cfg.tokens, cfg.m)

		// The 2-D Algorithm-1 pick: group size and per-phase degrees of a
		// hybrid world with GroupSize and degrees unset.
		_, auto, err := newRealpipeHybridWorld(cfg, ranks, 0, fsmoe.StrategyHybrid, 0)
		if err != nil {
			return err
		}
		pickG, pickF, pickB := auto.GroupSize(), 0, 0
		pickF, pickB = auto.PipelineDegrees()
		auto.Close()

		bestG, bestR, bestT := 0, 0, 0.0
		for g := 1; g <= ranks; g++ {
			if ranks%g != 0 {
				continue
			}
			row := []any{cfg.name, g}
			rowBestR, rowBestT := 0, 0.0
			for _, r := range degrees {
				layer, w, err := newRealpipeHybridWorld(cfg, ranks, r, fsmoe.StrategyHybrid, g)
				if err != nil {
					return err
				}
				if _, _, _, err := measurePass(layer, w, x, dy); err != nil { // warmup
					w.Close()
					return err
				}
				t, _, _, err := measurePass(layer, w, x, dy)
				w.Close()
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.1f", t))
				if rowBestR == 0 || t < rowBestT {
					rowBestR, rowBestT = r, t
				}
			}
			row = append(row, rowBestR)
			tb.AddRow(row...)
			if bestG == 0 || rowBestT < bestT {
				bestG, bestR, bestT = g, rowBestR, rowBestT
			}
		}
		note("%s: Algorithm-1 2-D pick g=%d r=%d/%d; measured best cell (g=%d, r=%d, %.1f ms)",
			cfg.name, pickG, pickF, pickB, bestG, bestR, bestT)
	}
	emit(tb)
	note("g=1 rows are the pure-EP schedule and g=4 rows the pure-ESP schedule (the hybrid runtime delegates its edges)")
	return nil
}

package main

import (
	"fmt"
	goruntime "runtime"

	"repro/fsmoe"
	"repro/internal/report"
	"repro/internal/runtime"
)

// realpipeConfig is one workload the executable runtime measures.
type realpipeConfig struct {
	name    string
	m, h, e int
	tokens  int
	degree  int // pipeline degree r for both phases
}

// realpipe runs the executable stream runtime for real: for each workload
// it executes one forward+backward pass of the multi-rank World at R=4
// three ways — sequentially (no overlap), pipelined on real streams
// (measured), and through the discrete-event simulator fed the measured
// sequential stage durations (predicted) — and prints the three times side
// by side. This is the §4 claim end to end: the same schedule artifact is
// simulated and executed, and the measured overlap should track the
// simulated one.
func realpipe() error {
	const ranks = 4
	fmt.Printf("== realpipe: measured vs simulated pipelining on the real-compute path (R=%d in-process ranks) ==\n", ranks)
	configs := []realpipeConfig{
		{name: "comm-heavy", m: 256, h: 64, e: 8, tokens: 2048, degree: 4},
		{name: "compute-heavy", m: 128, h: 512, e: 8, tokens: 2048, degree: 4},
	}
	tb := report.NewTable("one fwd+bwd pass, ms (sequential = no-overlap baseline)",
		"workload", "r", "algo1-r(fwd/bwd)", "sequential", "simulated-pipe", "measured-pipe", "speedup")
	for _, cfg := range configs {
		row, err := runRealpipe(cfg, ranks)
		if err != nil {
			return err
		}
		tb.AddRow(row...)
	}
	fmt.Println(tb)
	fmt.Println("simulated-pipe = DES makespan of the same stream plan with measured sequential stage durations")
	if n := goruntime.GOMAXPROCS(0); n < 2 {
		fmt.Printf("note: GOMAXPROCS=%d — streams cannot run in parallel on this machine, so measured-pipe\n"+
			"cannot realize the overlap; simulated-pipe shows what a multi-core runner achieves.\n", n)
	}
	return nil
}

// runRealpipe measures one configuration and returns its report row.
func runRealpipe(cfg realpipeConfig, ranks int) ([]any, error) {
	layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
		M: cfg.m, H: cfg.h, Experts: cfg.e, TopK: 2, CapacityFactor: 1.2, Seed: 13,
	})
	if err != nil {
		return nil, err
	}
	// What would Algorithm 1 pick for this shape? Reported alongside the
	// fixed sweep degree so the scheduler and runtime stay in one story.
	auto, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{Ranks: ranks, BatchTokens: cfg.tokens})
	if err != nil {
		return nil, err
	}
	autoF, autoB := auto.PipelineDegrees()

	w, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{Ranks: ranks, PipelineDegree: cfg.degree})
	if err != nil {
		return nil, err
	}
	x := fsmoe.RandTensor(71, cfg.tokens, cfg.m)
	dy := fsmoe.RandTensor(72, cfg.tokens, cfg.m)

	pass := func() (fwd, bwd float64, fwdPlan, bwdPlan *fsmoe.StreamPlan, fwdTr, bwdTr *fsmoe.Trace, err error) {
		layer.ZeroGrad()
		_, cache, err := w.Forward(x, false)
		if err != nil {
			return 0, 0, nil, nil, nil, nil, err
		}
		fwdPlan, fwdTr = w.LastPlan(), w.LastTrace()
		fwd = fwdTr.Makespan
		if _, err = w.Backward(cache, dy); err != nil {
			return 0, 0, nil, nil, nil, nil, err
		}
		bwdPlan, bwdTr = w.LastPlan(), w.LastTrace()
		bwd = bwdTr.Makespan
		return fwd, bwd, fwdPlan, bwdPlan, fwdTr, bwdTr, nil
	}

	// Warm up pools and the worker fleet once.
	if _, _, _, _, _, _, err := pass(); err != nil {
		return nil, err
	}

	// Sequential baseline: same plan, no overlap; its per-task durations
	// feed the simulator's prediction of the pipelined makespan.
	w.SetSequential(true)
	seqF, seqB, fp, bp, ftr, btr, err := pass()
	if err != nil {
		return nil, err
	}
	seq := seqF + seqB
	sim := fp.SimulateWith(runtime.Durations(ftr)).Makespan +
		bp.SimulateWith(runtime.Durations(btr)).Makespan

	// Measured pipelined execution.
	w.SetSequential(false)
	pipeF, pipeB, _, _, _, _, err := pass()
	if err != nil {
		return nil, err
	}
	pipe := pipeF + pipeB

	return []any{
		fmt.Sprintf("%s M=%d H=%d E=%d N=%d", cfg.name, cfg.m, cfg.h, cfg.e, cfg.tokens),
		cfg.degree,
		fmt.Sprintf("%d/%d", autoF, autoB),
		fmt.Sprintf("%.1f", seq),
		fmt.Sprintf("%.1f", sim),
		fmt.Sprintf("%.1f", pipe),
		fmt.Sprintf("%.2fx", seq/pipe),
	}, nil
}

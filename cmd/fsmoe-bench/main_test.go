package main

import (
	"strings"
	"testing"
)

// TestExperimentDispatchTable: every name "all" expands to must exist in
// the dispatch table, the real-execution experiments (realpipe, gradsync)
// are dispatchable but not part of "all", and lookups resolve exactly the
// named experiment.
func TestExperimentDispatchTable(t *testing.T) {
	table := experimentTable()
	for _, name := range allOrder() {
		if table[name] == nil {
			t.Fatalf("'all' references %q which is not in the dispatch table", name)
		}
	}
	for _, real := range []string{"realpipe", "gradsync"} {
		if table[real] == nil {
			t.Fatalf("%s missing from the dispatch table", real)
		}
		for _, name := range allOrder() {
			if name == real {
				t.Fatalf("%s must not run as part of the simulated 'all' sweep", real)
			}
		}
	}
	names, err := lookupExperiments("all")
	if err != nil || len(names) != len(allOrder()) {
		t.Fatalf("lookup all: %v, %d names", err, len(names))
	}
	names, err = lookupExperiments("fig4")
	if err != nil || len(names) != 1 || names[0] != "fig4" {
		t.Fatalf("lookup fig4: %v %v", names, err)
	}
}

// TestExperimentLookupRejectsUnknown: a typo fails with an error listing
// every valid experiment.
func TestExperimentLookupRejectsUnknown(t *testing.T) {
	_, err := lookupExperiments("tabel5")
	if err == nil {
		t.Fatal("unknown experiment must be rejected")
	}
	for _, want := range append([]string{"all", "realpipe", "gradsync"}, allOrder()...) {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list valid experiment %q", err, want)
		}
	}
}

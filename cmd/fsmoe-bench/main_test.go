package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/report"
)

// TestExperimentDispatchTable: every name "all" expands to must exist in
// the dispatch table, the real-execution experiments (realpipe, gradsync)
// are dispatchable but not part of "all", and lookups resolve exactly the
// named experiment.
func TestExperimentDispatchTable(t *testing.T) {
	table := experimentTable()
	for _, name := range allOrder() {
		if table[name] == nil {
			t.Fatalf("'all' references %q which is not in the dispatch table", name)
		}
	}
	for _, real := range []string{"realpipe", "gradsync", "calibrate"} {
		if table[real] == nil {
			t.Fatalf("%s missing from the dispatch table", real)
		}
		for _, name := range allOrder() {
			if name == real {
				t.Fatalf("%s must not run as part of the simulated 'all' sweep", real)
			}
		}
	}
	names, err := lookupExperiments("all")
	if err != nil || len(names) != len(allOrder()) {
		t.Fatalf("lookup all: %v, %d names", err, len(names))
	}
	names, err = lookupExperiments("fig4")
	if err != nil || len(names) != 1 || names[0] != "fig4" {
		t.Fatalf("lookup fig4: %v %v", names, err)
	}
}

// TestExperimentLookupRejectsUnknown: a typo fails with an error listing
// every valid experiment.
func TestExperimentLookupRejectsUnknown(t *testing.T) {
	_, err := lookupExperiments("tabel5")
	if err == nil {
		t.Fatal("unknown experiment must be rejected")
	}
	for _, want := range append([]string{"all", "realpipe", "gradsync", "calibrate"}, allOrder()...) {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list valid experiment %q", err, want)
		}
	}
}

// TestJSONCapture: tables and notes emitted while capturing land in
// BENCH_<experiment>.json, mirroring the printed cells exactly.
func TestJSONCapture(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	beginJSONCapture("unittest")
	tb := report.NewTable("title", "a", "b")
	tb.AddRow("x", 1.5)
	emit(tb)
	note("hello %d", 7)
	if err := writeJSONCapture(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("BENCH_unittest.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc report.Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "unittest" || len(doc.Tables) != 1 || len(doc.Notes) != 1 {
		t.Fatalf("unexpected doc %+v", doc)
	}
	tab := doc.Tables[0]
	if tab.Title != "title" || len(tab.Columns) != 2 || len(tab.Rows) != 1 ||
		tab.Rows[0][0] != "x" || tab.Rows[0][1] != "1.50" {
		t.Fatalf("unexpected table %+v", tab)
	}
	if doc.Notes[0] != "hello 7" {
		t.Fatalf("unexpected notes %v", doc.Notes)
	}
	// Capture is off again: emit must not panic or accumulate.
	emit(tb)
	if jsonSink != nil {
		t.Fatal("sink still active after write")
	}
}

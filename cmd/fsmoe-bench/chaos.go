package main

import (
	"fmt"
	"os"
	"sort"

	"repro/fsmoe"
	"repro/internal/report"
)

// chaosConfig is the small real-compute workload the chaos sweep hammers;
// one fwd+bwd pass runs per iteration per cell, so it stays deliberately
// lighter than the realpipe workloads.
func chaosConfig() realpipeConfig {
	return realpipeConfig{name: "chaos", m: 128, h: 64, e: 8, tokens: 512, degree: 2}
}

// chaosExperiment sweeps fault rate × strategy on the executable runtime:
// transient faults injected into every collective kind (at the task level
// and inside the collectives) are retried until the pass completes, and
// the sweep reports completion counts, retries spent, the p50/p99 pass
// times (retry backoff inflates the tail) and whether the surviving
// output stayed bit-identical to the fault-free pass. A second table
// downs a rank permanently and reports how degraded mode completed the
// step. The iters argument (the -sample flag) is the passes per cell.
func chaosExperiment(iters int) error {
	if iters < 1 {
		iters = 1
	}
	if iters > 32 {
		iters = 32
	}
	const ranks = 4
	cfg := chaosConfig()
	fmt.Printf("== chaos: seeded fault injection on the executable runtime (R=%d, %d pass(es) per cell) ==\n", ranks, iters)

	tb := report.NewTable("transient chaos sweep, one fwd+bwd pass per iteration",
		"strategy", "fault-rate", "passes", "completed", "faults", "retries", "p50 ms", "p99 ms", "bit-identical")
	for _, strat := range realpipeStrategies() {
		layer, w, err := newRealpipeWorld(cfg, ranks, cfg.degree, strat)
		if err != nil {
			return err
		}
		x := fsmoe.RandTensor(81, cfg.tokens, cfg.m)
		dy := fsmoe.RandTensor(82, cfg.tokens, cfg.m)

		// Fault-free reference pass; also warms the pools and workers.
		ref, _, _, _, err := chaosPass(layer, w, x, dy)
		if err != nil {
			w.Close()
			return err
		}
		for _, rate := range []float64{0, 0.01, 0.05} {
			var times []float64
			faults, retries, completed := 0, 0, 0
			identical := true
			for it := 0; it < iters; it++ {
				if rate > 0 {
					w.SetFaultPlan(fsmoe.NewFaultPlan(fsmoe.FaultSpec{
						Seed: uint64(1000*it + 7),
						KindProb: map[string]float64{
							fsmoe.KindAlltoAll:      rate,
							fsmoe.KindAllGather:     rate,
							fsmoe.KindReduceScatter: rate,
						},
						CollectiveProb:       rate,
						MaxTransientsPerTask: 2,
					}))
				} else {
					w.SetFaultPlan(nil)
				}
				y, t, f, r, err := chaosPass(layer, w, x, dy)
				if err != nil {
					w.Close()
					return err
				}
				completed++
				times = append(times, t)
				faults += f
				retries += r
				if it == 0 && rate > 0 {
					captureTrace(fmt.Sprintf("chaos %s rate=%.2f bwd", strat, rate), w.LastTrace())
				}
				if y.MaxAbsDiff(ref) != 0 {
					identical = false
				}
			}
			tb.AddRow(string(strat), fmt.Sprintf("%.3f", rate), iters, completed,
				faults, retries,
				fmt.Sprintf("%.1f", percentile(times, 50)),
				fmt.Sprintf("%.1f", percentile(times, 99)),
				identical)
		}
		w.SetFaultPlan(nil)
		w.Close()
	}
	emit(tb)
	note("fault-rate = per-attempt transient probability on every collective kind (task-level KindProb and in-collective CollectiveProb); " +
		"MaxTransientsPerTask=2 under the default 4-attempt retry budget, so every pass recovers")

	// Permanent rank-down: the pass must complete degraded, not abort.
	tb2 := report.NewTable("permanent rank-down mid-forward: degraded-mode completion",
		"strategy", "phase", "rank", "lost-experts", "rerouted", "dropped", "retries", "recovery-ms")
	for _, strat := range realpipeStrategies() {
		layer, w, err := newRealpipeWorld(cfg, ranks, cfg.degree, strat)
		if err != nil {
			return err
		}
		x := fsmoe.RandTensor(81, cfg.tokens, cfg.m)
		dy := fsmoe.RandTensor(82, cfg.tokens, cfg.m)
		w.SetFaultPlan(fsmoe.NewFaultPlan(fsmoe.FaultSpec{
			Seed: 5,
			Down: &fsmoe.FaultDown{Rank: 1, Kind: fsmoe.KindExperts},
		}))
		layer.ZeroGrad()
		_, cache, err := w.Forward(x, false)
		if err != nil {
			w.Close()
			return fmt.Errorf("chaos: degraded forward must complete: %w", err)
		}
		if _, err := w.Backward(cache, dy); err != nil {
			w.Close()
			return fmt.Errorf("chaos: degraded backward must complete: %w", err)
		}
		deg := w.LastDegraded()
		if deg == nil {
			w.Close()
			return fmt.Errorf("chaos: rank-down produced no DegradedResult (strategy %s)", strat)
		}
		captureTrace(fmt.Sprintf("chaos %s rank-down", strat), w.LastTrace())
		tb2.AddRow(string(strat), deg.Phase, deg.Rank, len(deg.LostExperts),
			deg.ReroutedTokens, deg.DroppedTokens, deg.Retries,
			fmt.Sprintf("%.1f", deg.RecoveryMS))
		w.Close()
	}
	emit(tb2)
	note("a permanent failure completes the pass degraded: the dead rank's tokens are re-routed into surviving experts' " +
		"free capacity (overflow dropped), dead experts freeze until ResetHealth; recovery-ms is the sequential fallback cost")

	// Elastic recovery: checkpoint, kill a rank, recover from the latest
	// snapshot onto the surviving topology, and keep stepping — reporting
	// the MTTR and the degraded/recovered step-time ratios against healthy.
	tb3 := report.NewTable("checkpoint → rank kill → elastic recovery (shrink): MTTR and step-time ratios",
		"strategy", "healthy ms", "degraded ms", "mttr ms", "recovered ms",
		"deg/healthy", "rec/healthy", "new ranks", "new strategy", "moved experts", "bit-identical")
	for _, strat := range realpipeStrategies() {
		_, w, err := newRealpipeWorld(cfg, ranks, cfg.degree, strat)
		if err != nil {
			return err
		}
		x := fsmoe.RandTensor(81, cfg.tokens, cfg.m)
		dy := fsmoe.RandTensor(82, cfg.tokens, cfg.m)
		dir, err := os.MkdirTemp("", "fsmoe-chaos-ckpt-")
		if err != nil {
			w.Close()
			return err
		}
		mgr := &fsmoe.CheckpointManager{Dir: dir, Keep: 2}
		stack := []*fsmoe.World{w}
		scfg := fsmoe.StepConfig{LR: 0.01, ChunkBytes: 64 << 10}
		ckptCfg := scfg
		ckptCfg.Checkpoint = mgr

		fail := func(err error) error {
			w.Close()
			os.RemoveAll(dir)
			return err
		}
		// Two healthy checkpointed steps: the first warms pools and
		// workers, the second is the healthy baseline.
		healthyMS := 0.0
		for s := 0; s < 2; s++ {
			res, err := fsmoe.StepStack(stack, x, dy, ckptCfg)
			if err != nil {
				return fail(err)
			}
			healthyMS = res.ForwardMS + res.StepMS()
		}

		// Kill rank 1; the step survives degraded (checkpointing off, so
		// the pre-failure snapshot stays latest).
		w.SetFaultPlan(fsmoe.NewFaultPlan(fsmoe.FaultSpec{
			Seed: 5,
			Down: &fsmoe.FaultDown{Rank: 1, Kind: fsmoe.KindExperts},
		}))
		resDeg, err := fsmoe.StepStack(stack, x, dy, scfg)
		if err != nil {
			return fail(fmt.Errorf("chaos: degraded step must complete: %w", err))
		}
		degradedMS := resDeg.ForwardMS + resDeg.StepMS()

		snap, err := mgr.LoadLatest()
		if err != nil {
			return fail(err)
		}
		reports, err := fsmoe.Recover(stack, snap, fsmoe.RecoveryPolicy{Mode: fsmoe.RecoverShrink})
		if err != nil {
			return fail(fmt.Errorf("chaos: recovery failed: %w", err))
		}
		rep := reports[0]
		resRec, err := fsmoe.StepStack(stack, x, dy, scfg)
		if err != nil {
			return fail(fmt.Errorf("chaos: post-recovery step failed: %w", err))
		}
		recoveredMS := resRec.ForwardMS + resRec.StepMS()

		// Bit-identity: a fresh world built directly at the surviving
		// topology, restored from the same checkpoint, must step to the
		// identical replicas.
		_, refW, err := newRealpipeWorld(cfg, rep.NewRanks, cfg.degree, rep.NewStrategy)
		if err != nil {
			return fail(err)
		}
		refStack := []*fsmoe.World{refW}
		identical := true
		if err := fsmoe.Restore(refStack, snap); err != nil {
			refW.Close()
			return fail(err)
		}
		resRef, err := fsmoe.StepStack(refStack, x, dy, scfg)
		if err != nil {
			refW.Close()
			return fail(err)
		}
		for r := range resRef.RankParams {
			for k := range resRef.RankParams[r] {
				if resRec.RankParams[r][k] != resRef.RankParams[r][k] {
					identical = false
				}
			}
		}
		refW.Close()

		tb3.AddRow(string(strat),
			fmt.Sprintf("%.1f", healthyMS),
			fmt.Sprintf("%.1f", degradedMS),
			fmt.Sprintf("%.1f", rep.RecoveryMS),
			fmt.Sprintf("%.1f", recoveredMS),
			fmt.Sprintf("%.2f", ratio(degradedMS, healthyMS)),
			fmt.Sprintf("%.2f", ratio(recoveredMS, healthyMS)),
			rep.NewRanks, string(rep.NewStrategy), len(rep.MovedExperts), identical)
		w.Close()
		os.RemoveAll(dir)
	}
	emit(tb3)
	note("mttr = wall time of the rebuild (state rollback + expert weight re-placement + topology swap); recovered steps run " +
		"on the surviving ranks (ESP/hybrid fall back to EP) bit-identically to a fresh restart from the same checkpoint")
	return nil
}

// ratio guards the step-time ratios against a degenerate zero baseline.
func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// chaosPass runs one fwd+bwd pass, returning the forward output, the
// summed measured makespans and the fault/retry event counts of both
// plans.
func chaosPass(layer *fsmoe.Layer, w *fsmoe.World, x, dy *fsmoe.Tensor) (*fsmoe.Tensor, float64, int, int, error) {
	layer.ZeroGrad()
	total, faults, retries := 0.0, 0, 0
	count := func() {
		if tr := w.LastTrace(); tr != nil {
			total += tr.Makespan
			faults += tr.EventCount(fsmoe.EventFault)
			retries += tr.EventCount(fsmoe.EventRetry)
		}
	}
	y, cache, err := w.Forward(x, false)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	count()
	if _, err := w.Backward(cache, dy); err != nil {
		return nil, 0, 0, 0, err
	}
	count()
	return y.Clone(), total, faults, retries, nil
}

// percentile returns the p-th percentile (nearest-rank) of times.
func percentile(times []float64, p float64) float64 {
	if len(times) == 0 {
		return 0
	}
	s := append([]float64(nil), times...)
	sort.Float64s(s)
	idx := int(float64(len(s))*p/100.0+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

package main

// The telemetry experiment drives the observability subsystem end to end
// on real compute: Zipf-skewed routing (the load distribution FlexMoE-style
// placement watches) stepped under every hard-routing strategy with a
// registry sink attached, reporting each step's structured metrics —
// overlap ratio, per-expert load entropy/imbalance, dropped tokens,
// gradient-sync tail — plus the live registry totals. With -pprof the same
// registry is served on /debug/vars while the run executes.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"

	"repro/fsmoe"
	"repro/internal/report"
)

// benchTelemetry is the process-wide metrics registry: the telemetry
// experiment records into it and -pprof publishes it on /debug/vars.
var benchTelemetry = fsmoe.NewTelemetry()

// startDebugServer serves net/http/pprof and expvar on addr, with the
// bench registry published as the "fsmoe" expvar.
func startDebugServer(addr string) error {
	expvar.Publish("fsmoe", benchTelemetry)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go http.Serve(ln, nil)
	fmt.Printf("debug server on http://%s/debug/pprof/ (registry at /debug/vars)\n", ln.Addr())
	return nil
}

// telemetryExperiment steps a Zipf-routed layer once per strategy and
// tabulates the emitted StepMetrics.
func telemetryExperiment() error {
	const (
		ranks  = 4
		m      = 128
		h      = 64
		e      = 8
		tokens = 512
	)
	fmt.Printf("== telemetry: structured step metrics on the executable runtime (R=%d, Zipf-routed, skew 1.2) ==\n", ranks)
	sink := fsmoe.NewRegistrySink(benchTelemetry)
	tb := report.NewTable("one training step per strategy (capacity factor 1.2 — overflow drops are the signal)",
		"strategy", "r(f/b)", "wall ms", "tail ms", "overlap", "serial ms", "entropy", "imbalance", "dropped", "retries")
	for _, strat := range realpipeStrategies() {
		layer, err := fsmoe.NewLayer(fsmoe.LayerConfig{
			M: m, H: h, Experts: e, TopK: 2, CapacityFactor: 1.2,
			Gate: fsmoe.GateZipf, ZipfSkew: 1.2, Seed: 13,
		})
		if err != nil {
			return err
		}
		wc := fsmoe.WorldConfig{
			Ranks: ranks, PipelineDegree: 2, Strategy: strat,
			BatchTokens: tokens, Sink: sink,
		}
		if strat == fsmoe.StrategyHybrid {
			wc.GroupSize = ranks / 2
		}
		w, err := fsmoe.NewWorld(layer, wc)
		if err != nil {
			return err
		}
		res, err := w.Step(fsmoe.RandTensor(91, tokens, m), fsmoe.RandTensor(92, tokens, m), fsmoe.StepConfig{LR: 0.01})
		if err != nil {
			w.Close()
			return err
		}
		sm := res.Metrics
		if sm == nil {
			w.Close()
			return fmt.Errorf("telemetry: sink configured but no StepMetrics emitted")
		}
		tb.AddRow(stratCell(strat, w.GroupSize()),
			fmt.Sprintf("%d/%d", sm.DegreeFwd, sm.DegreeBwd),
			fmt.Sprintf("%.1f", sm.WallMS()),
			fmt.Sprintf("%.1f", sm.TailMS),
			fmt.Sprintf("%.2f", sm.OverlapRatio),
			fmt.Sprintf("%.1f", sm.SerialMS),
			fmt.Sprintf("%.3f", sm.ExpertEntropy),
			fmt.Sprintf("%.2f", sm.ExpertImbalance),
			sm.DroppedTokens,
			sm.Retries)
		if len(sm.ExpertTokens) > 0 {
			note("%s per-expert tokens: %v (sync hidden %.0f B, tail %.0f B; pool %d compute / %d comm workers)",
				stratCell(strat, w.GroupSize()), sm.ExpertTokens[0],
				sm.SyncHiddenBytes, sm.SyncTailBytes, sm.ComputeWorkers, sm.CommWorkers)
		}
		for i, tr := range res.Traces {
			captureTrace(fmt.Sprintf("telemetry %s bwd[%d]", stratCell(strat, w.GroupSize()), i), tr)
		}
		w.Close()
	}
	emit(tb)
	note("registry after the sweep: %s", benchTelemetry.String())
	note("overlap = serial task time / pipelined wall; entropy/imbalance are the pooled per-expert load stats (1 = balanced)")
	return nil
}

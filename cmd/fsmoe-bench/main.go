// Command fsmoe-bench regenerates every table and figure of the paper's
// evaluation section on the simulated testbeds, plus the executable-
// runtime experiment that measures the pipelining for real.
//
// Usage:
//
//	fsmoe-bench -experiment all
//	fsmoe-bench -experiment table5 -sample 9
//	fsmoe-bench -experiment realpipe
//	fsmoe-bench -experiment gradsync
//
// Experiments: table2, table5, table6, fig4, fig5, fig6, fig7, fig8,
// degrees, realpipe, gradsync, calibrate, chaos, telemetry, all. -sample N
// evaluates every Nth configuration of the 1458 Table 4 grid (1 = full
// sweep; chaos reuses it as passes per cell). "all" runs the simulated
// paper experiments; realpipe, gradsync, calibrate, chaos and telemetry
// execute real multi-rank passes and are invoked explicitly.
//
// Observability: -trace out.json writes the measured stream plans of any
// real-execution experiment as Chrome trace-event JSON (Perfetto-loadable);
// -pprof addr serves net/http/pprof with the live telemetry registry
// published on /debug/vars.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/fsmoe"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "table2|table5|table6|fig4|fig5|fig6|fig7|fig8|degrees|realpipe|gradsync|calibrate|chaos|telemetry|all")
	sample := flag.Int("sample", 9, "evaluate every Nth Table 4 configuration (1 = all 1458); for chaos: passes per cell")
	jsonOut := flag.Bool("json", false, "also write each experiment's tables to BENCH_<experiment>.json (perf-trajectory tracking)")
	traceOut := flag.String("trace", "", "write measured stream plans as Chrome trace-event JSON to this file (realpipe/chaos/telemetry)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060), telemetry registry on /debug/vars")
	flag.Parse()

	// Every measured experiment runs with static plan verification on: a
	// malformed schedule fails the experiment with a named error instead
	// of deadlocking or mis-aggregating (see runtime.Plan.Verify).
	fsmoe.SetVerifyPlans(true)

	// Validate up front so a typo fails with the full menu instead of a
	// bare "unknown experiment" at dispatch time.
	names, err := lookupExperiments(*experiment)
	if err != nil {
		fatal(err)
	}
	if *pprofAddr != "" {
		if err := startDebugServer(*pprofAddr); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		enableTraceCapture()
	}
	runs := experimentTable()
	for i, name := range names {
		if *jsonOut {
			beginJSONCapture(name)
		}
		if err := runs[name](*sample); err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := writeJSONCapture(); err != nil {
				fatal(err)
			}
		}
		if i < len(names)-1 {
			fmt.Println()
		}
	}
	if *traceOut != "" {
		if err := writeTraceCapture(*traceOut); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsmoe-bench:", err)
	os.Exit(1)
}

func testbeds() []*topology.Cluster {
	return []*topology.Cluster{topology.TestbedA(), topology.TestbedB()}
}

// table2 reproduces the per-operation breakdown of a transformer layer for
// GPT2-XL and Mixtral-7B on both testbeds (B=4, L=1024, one forward row
// and one backward row per model, exactly the paper's format).
func table2() error {
	fmt.Println("== Table 2: per-operation time breakdown (ms, % of phase) ==")
	for _, c := range testbeds() {
		s, err := topology.CanonicalScenario(c, 1)
		if err != nil {
			return err
		}
		m := core.ModelsFromCluster(c)
		tb := report.NewTable(
			fmt.Sprintf("Testbed %s (B=4, L=1024)", c.Name),
			"row", sim.KindAlltoAll, sim.KindAllReduce, sim.KindAllGather, sim.KindReduceScatter, sim.KindExperts, sim.KindOthers)
		for _, model := range []workload.ModelSpec{workload.GPT2XLMoE(c), workload.Mixtral7B(c)} {
			cfg := model.Layer
			cfg.B, cfg.L = 4, 1024
			v := workload.VolumesFor(cfg, s)
			for _, phase := range []core.Phase{core.Forward, core.Backward} {
				a2a := 2 * m.TA2A(v, 1)
				ar := 0.0
				if phase == core.Backward {
					ar = m.TAR(v.GradBytes)
				}
				ag := m.TAG(v, 1)
				rs := m.TRS(v, 1)
				exp := m.TExp(v, 1, phase)
				others := v.DenseFwd
				if phase == core.Backward {
					others = v.DenseBwd
				}
				total := a2a + ar + ag + rs + exp + others
				cell := func(t float64) string {
					return fmt.Sprintf("%.1f(%.1f%%)", t, 100*t/total)
				}
				tb.AddRow(fmt.Sprintf("%s-%s", model.Name, phase),
					cell(a2a), cell(ar), cell(ag), cell(rs), cell(exp), cell(others))
			}
		}
		emit(tb)
	}
	return nil
}

// fig4 demonstrates the four scheduling cases with Gantt charts.
func fig4() error {
	fmt.Println("== Fig 4: the four pipelining cases (Testbed A, backward, r=2) ==")
	m := core.ModelsFromCluster(topology.TestbedA())
	cases := []struct {
		name string
		v    core.Volumes
		tgar float64
	}{
		{"case1 (inter-node bound: AlltoAll + Gradient-AllReduce)",
			core.Volumes{NA2A: 2e7, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2, GradBytes: 4e8}, 200},
		{"case2 (compute bound: experts dominate)",
			core.Volumes{NA2A: 2e6, NAG: 1e6, NRS: 1e6, ExpMACs: 8e11, ExpGEMMs: 2}, 0},
		{"case3 (AlltoAll bound)",
			core.Volumes{NA2A: 6e7, NAG: 1e6, NRS: 1e6, ExpMACs: 1e9, ExpGEMMs: 2}, 0},
		{"case4 (intra-node bound: AllGather/ReduceScatter)",
			core.Volumes{NA2A: 1e6, NAG: 8e7, NRS: 8e7, ExpMACs: 1e9, ExpGEMMs: 2}, 0},
	}
	for _, cse := range cases {
		got := m.Classify(cse.v, cse.tgar, core.Backward, 2)
		note("%s → classified %v", cse.name, got)
		res, err := m.SimulateSingleLayer(cse.v, core.SystemFSMoE, core.BuildOptions{RMax: 2})
		if err != nil {
			return err
		}
		fmt.Print(res.Trace.Gantt(100))
		fmt.Println()
	}
	return nil
}

// fig5 reproduces the performance-model fitting workflow.
func fig5() error {
	fmt.Println("== Fig 5: performance models (measure → least-squares fit → R²) ==")
	for _, c := range testbeds() {
		cm, err := perfmodel.ProfileCluster(c)
		if err != nil {
			return err
		}
		tb := report.NewTable(fmt.Sprintf("Testbed %s", c.Name), "model", "alpha_ms", "beta_ms_per_unit", "R2")
		row := func(name string, f perfmodel.Fitted) {
			tb.AddRow(name, fmt.Sprintf("%.3e", f.Alpha), fmt.Sprintf("%.3e", f.Beta), fmt.Sprintf("%.6f", f.R2))
		}
		row("AlltoAll(2DH)", cm.A2A)
		row("AlltoAll(flat)", cm.A2AFlat)
		row(sim.KindAllGather, cm.AG)
		row(sim.KindReduceScatter, cm.RS)
		row(sim.KindAllReduce, cm.AR)
		row("GEMM", cm.GEMM)
		emit(tb)
	}
	return nil
}

// table5 sweeps the Table 4 grid and reports average speedups over Tutel.
func table5(sample int) error {
	if sample < 1 {
		sample = 1
	}
	fmt.Printf("== Table 5: averaged speedups over Tutel on configured layers (every %dth of 1458) ==\n", sample)
	systems := []core.System{core.SystemTutel, core.SystemTutelImproved, core.SystemFSMoENoIIO, core.SystemFSMoE}
	tb := report.NewTable("", "schedule", "Testbed A", "Testbed B")
	results := map[core.System][2]float64{}
	for ci, c := range testbeds() {
		s, err := topology.CanonicalScenario(c, 1)
		if err != nil {
			return err
		}
		m := core.ModelsFromCluster(c)
		grid := workload.Grid(c)
		sums := map[core.System]float64{}
		for i := 0; i < len(grid); i += sample {
			v := workload.VolumesFor(grid[i], s)
			for _, sys := range systems {
				res, err := m.SimulateSingleLayer(v, sys, core.BuildOptions{})
				if err != nil {
					return err
				}
				sums[sys] += res.Total
			}
		}
		for _, sys := range systems {
			r := results[sys]
			r[ci] = sums[core.SystemTutel] / sums[sys]
			results[sys] = r
		}
	}
	for _, sys := range systems {
		tb.AddRow(string(sys), results[sys][0], results[sys][1])
	}
	emit(tb)
	return nil
}

// fig6 compares the systems end to end on the real models.
func fig6() error {
	fmt.Println("== Fig 6: speedups over DS-MoE on real-world MoE models ==")
	for _, c := range testbeds() {
		s, err := topology.CanonicalScenario(c, 1)
		if err != nil {
			return err
		}
		m := core.ModelsFromCluster(c)
		models := []workload.ModelSpec{workload.GPT2XLMoE(c), workload.Mixtral7B(c)}
		if c.Name == "A" {
			models = append(models, workload.Mixtral22B(c))
		}
		tb := report.NewTable(fmt.Sprintf("Testbed %s (speedup over DS-MoE)", c.Name),
			"model", "tutel", "tutel-improved", "pipemoe-lina", "fsmoe-no-iio", "fsmoe", "iter_dsmoe_ms")
		for _, spec := range models {
			times, err := trainsim.Compare(m, spec, s, core.BuildOptions{})
			if err != nil {
				return err
			}
			sp := trainsim.Speedups(times, core.SystemDSMoE)
			tb.AddRow(spec.Name, sp[core.SystemTutel], sp[core.SystemTutelImproved],
				sp[core.SystemLina], sp[core.SystemFSMoENoIIO], sp[core.SystemFSMoE],
				times[core.SystemDSMoE])
		}
		emit(tb)
	}
	return nil
}

// fig7 sweeps sequence length and cluster size on Testbed A.
func fig7() error {
	fmt.Println("== Fig 7: speedups over DS-MoE with varied L and P (Testbed A, Mixtral-7B) ==")
	base := topology.TestbedA()
	tb := report.NewTable("", "setting", "tutel", "fsmoe")
	for _, l := range []int{512, 1024, 2048} {
		c := base
		s, err := topology.CanonicalScenario(c, 1)
		if err != nil {
			return err
		}
		m := core.ModelsFromCluster(c)
		spec := workload.Mixtral7B(c).WithSeqLen(l)
		times, err := trainsim.Compare(m, spec, s, core.BuildOptions{})
		if err != nil {
			return err
		}
		sp := trainsim.Speedups(times, core.SystemDSMoE)
		tb.AddRow(fmt.Sprintf("P=48 L=%d", l), sp[core.SystemTutel], sp[core.SystemFSMoE])
	}
	for _, p := range []int{16, 32, 48} {
		c := base.WithGPUs(p)
		s, err := topology.CanonicalScenario(c, 1)
		if err != nil {
			return err
		}
		m := core.ModelsFromCluster(c)
		spec := workload.Mixtral7B(c)
		times, err := trainsim.Compare(m, spec, s, core.BuildOptions{})
		if err != nil {
			return err
		}
		sp := trainsim.Speedups(times, core.SystemDSMoE)
		tb.AddRow(fmt.Sprintf("P=%d L=1024", p), sp[core.SystemTutel], sp[core.SystemFSMoE])
	}
	emit(tb)
	return nil
}

// fig8 enables GPipe pipeline parallelism (NPP=2).
func fig8() error {
	fmt.Println("== Fig 8: speedups over DS-MoE with PP enabled (Testbed A, NPP=2, GPipe) ==")
	c := topology.TestbedA()
	s, err := topology.CanonicalScenario(c, 2)
	if err != nil {
		return err
	}
	m := core.ModelsFromCluster(c)
	tb := report.NewTable("", "model", "tutel", "tutel-improved", "pipemoe-lina", "fsmoe-no-iio", "fsmoe")
	for _, spec := range []workload.ModelSpec{workload.GPT2XLMoE(c), workload.Mixtral7B(c), workload.Mixtral22B(c)} {
		times, err := trainsim.ComparePP(m, spec, s, 2, 4, core.BuildOptions{})
		if err != nil {
			return err
		}
		sp := trainsim.Speedups(times, core.SystemDSMoE)
		tb.AddRow(spec.Name, sp[core.SystemTutel], sp[core.SystemTutelImproved],
			sp[core.SystemLina], sp[core.SystemFSMoENoIIO], sp[core.SystemFSMoE])
	}
	emit(tb)
	return nil
}

// table6 sweeps the gating functions on GPT2-XL, Testbed B.
func table6() error {
	fmt.Println("== Table 6: gating functions on GPT2-XL, Testbed B (iteration ms) ==")
	c := topology.TestbedB()
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		return err
	}
	m := core.ModelsFromCluster(c)
	tb := report.NewTable("", "gating", "DeepSpeed-MoE", "FSMoE", "speedup")
	for _, g := range []workload.GateKind{workload.GateGShard, workload.GateXMoE, workload.GateSigmoid, workload.GateEC} {
		spec := workload.GPT2XLMoE(c)
		spec.Layer.Gate = g
		times, err := trainsim.Compare(m, spec, s, core.BuildOptions{})
		if err != nil {
			return err
		}
		ds, fs := times[core.SystemDSMoE], times[core.SystemFSMoE]
		tb.AddRow(string(g), ds, fs, fmt.Sprintf("%.2fx", ds/fs))
	}
	emit(tb)
	return nil
}

// degrees reports the §2.3 motivation stat: how many Table 4 configurations
// have different optimal forward and backward pipeline degrees.
func degrees(sample int) error {
	if sample < 1 {
		sample = 1
	}
	fmt.Printf("== §2.3 motivation: phase-dependent optimal degrees (every %dth of 1458, Testbed B) ==\n", sample)
	c := topology.TestbedB()
	s, err := topology.CanonicalScenario(c, 1)
	if err != nil {
		return err
	}
	m := core.ModelsFromCluster(c)
	grid := workload.Grid(c)
	differ, total := 0, 0
	hist := map[int]int{}
	for i := 0; i < len(grid); i += sample {
		v := workload.VolumesFor(grid[i], s)
		f := m.FindOptimalPipelineDegree(v, 0, core.Forward, 16)
		b := m.FindOptimalPipelineDegree(v, 0, core.Backward, 16)
		if f.R != b.R {
			differ++
		}
		hist[b.R-f.R]++
		total++
	}
	note("%d of %d configurations (%.0f%%) have different optimal fwd/bwd degrees (paper: 912/1458 = 63%%)",
		differ, total, 100*float64(differ)/float64(total))
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		note("  bwd-fwd degree delta %+d: %d configs", k, hist[k])
	}
	return nil
}

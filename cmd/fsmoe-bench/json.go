package main

// Machine-readable experiment output: with -json, every table an
// experiment prints is also captured into BENCH_<experiment>.json via the
// shared report.Doc schema (also used by fsmoe-profile -json).

import (
	"fmt"

	"repro/internal/report"
)

// jsonSink collects the current experiment's document; nil when -json is
// off or between experiments.
var jsonSink *report.Doc

// beginJSONCapture starts collecting for one experiment.
func beginJSONCapture(experiment string) {
	jsonSink = report.NewDoc(experiment)
}

// writeJSONCapture writes the collected document to BENCH_<experiment>.json
// in the working directory and stops collecting.
func writeJSONCapture() error {
	doc := jsonSink
	jsonSink = nil
	if doc == nil {
		return nil
	}
	path, err := doc.WriteFile()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// emit prints a table and, when capturing, records it.
func emit(tb *report.Table) {
	fmt.Println(tb)
	if jsonSink != nil {
		jsonSink.AddTable(tb)
	}
}

// note prints a line and, when capturing, records it in the document's
// notes.
func note(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	fmt.Println(line)
	if jsonSink != nil {
		jsonSink.Notes = append(jsonSink.Notes, line)
	}
}

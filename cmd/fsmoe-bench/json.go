package main

// Machine-readable experiment output: with -json, every table an
// experiment prints is also captured into BENCH_<experiment>.json, so the
// perf trajectory across commits can be tracked by tooling instead of by
// scraping stdout. The JSON mirrors the printed tables cell for cell —
// one source of truth, two renderings.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/report"
)

// jsonTable is one table of an experiment document.
type jsonTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// benchDoc is the BENCH_<experiment>.json schema.
type benchDoc struct {
	Experiment string      `json:"experiment"`
	Tables     []jsonTable `json:"tables"`
	Notes      []string    `json:"notes,omitempty"`
}

// jsonSink collects the current experiment's document; nil when -json is
// off or between experiments.
var jsonSink *benchDoc

// beginJSONCapture starts collecting for one experiment.
func beginJSONCapture(experiment string) {
	jsonSink = &benchDoc{Experiment: experiment}
}

// writeJSONCapture writes the collected document to BENCH_<experiment>.json
// in the working directory and stops collecting.
func writeJSONCapture() error {
	doc := jsonSink
	jsonSink = nil
	if doc == nil {
		return nil
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", doc.Experiment)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// emit prints a table and, when capturing, records it.
func emit(tb *report.Table) {
	fmt.Println(tb)
	if jsonSink != nil {
		jsonSink.Tables = append(jsonSink.Tables, jsonTable{
			Title:   tb.Title,
			Columns: tb.Headers,
			Rows:    tb.Rows(),
		})
	}
}

// note prints a line and, when capturing, records it in the document's
// notes.
func note(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	fmt.Println(line)
	if jsonSink != nil {
		jsonSink.Notes = append(jsonSink.Notes, line)
	}
}

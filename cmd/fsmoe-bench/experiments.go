package main

import (
	"fmt"
	"sort"
	"strings"
)

// experimentTable is the single dispatch table behind -experiment: every
// runnable experiment keyed by name. The int argument is the Table 4
// sampling stride; experiments that ignore it discard it.
func experimentTable() map[string]func(int) error {
	return map[string]func(int) error{
		"table2":    func(int) error { return table2() },
		"table5":    table5,
		"table6":    func(int) error { return table6() },
		"fig4":      func(int) error { return fig4() },
		"fig5":      func(int) error { return fig5() },
		"fig6":      func(int) error { return fig6() },
		"fig7":      func(int) error { return fig7() },
		"fig8":      func(int) error { return fig8() },
		"degrees":   degrees,
		"realpipe":  func(int) error { return realpipe() },
		"gradsync":  func(int) error { return gradsyncExperiment() },
		"calibrate": func(int) error { return calibrateExperiment() },
		"chaos":     chaosExperiment,
		"telemetry": func(int) error { return telemetryExperiment() },
	}
}

// allOrder is the presentation order of "-experiment all" — the simulated
// paper experiments. realpipe, gradsync, calibrate, chaos and telemetry
// execute real multi-rank compute and are run explicitly, not as part of
// the paper sweep.
func allOrder() []string {
	return []string{"table2", "fig4", "fig5", "table5", "fig6", "fig7", "fig8", "table6", "degrees"}
}

// validExperimentNames lists every accepted -experiment value, sorted,
// with "all" first.
func validExperimentNames() []string {
	names := make([]string, 0, len(experimentTable())+1)
	for name := range experimentTable() {
		names = append(names, name)
	}
	sort.Strings(names)
	return append([]string{"all"}, names...)
}

// lookupExperiments resolves an -experiment value to the list of
// experiment names to run, or an error naming every valid choice.
func lookupExperiments(name string) ([]string, error) {
	if name == "all" {
		return allOrder(), nil
	}
	if _, ok := experimentTable()[name]; !ok {
		return nil, fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(validExperimentNames(), ", "))
	}
	return []string{name}, nil
}

package main

// The calibrate experiment closes the Algorithm-1 loop on this machine:
// fsmoe.Calibrate measures a strategy × degree sweep of the executable
// runtime on each realpipe workload, fits the per-kind cost coefficients
// from the measured stage times, and this experiment then compares three
// answers to "which strategy and pipeline degree should this layer run
// at" — Algorithm 1 on the testbed constants, Algorithm 1 on the
// calibrated profile, and the measured optimum of the sweep itself. Where
// the sweep shows a meaningful gap, the calibrated pick should land on
// (or within a few percent of) the measured optimum.

import (
	"fmt"

	"repro/fsmoe"
	"repro/internal/report"
)

// calibrateDegrees is the sweep grid, matching the realpipe degree sweep.
func calibrateDegrees() []int { return []int{1, 2, 4, 8} }

// calibrateMatchTolerance: a pick is judged only when the sweep gap
// between best and worst degree (or between strategies) exceeds 5% —
// below that the choice is measurement noise, per the acceptance gate.
const calibrateMatchTolerance = 0.05

func calibrateExperiment() error {
	const ranks = 4
	fmt.Printf("== calibrate: measured-cost calibration of Algorithm 1 (R=%d in-process ranks) ==\n", ranks)
	for _, cfg := range realpipeConfigs() {
		layer, err := newRealpipeLayer(cfg)
		if err != nil {
			return err
		}
		cal, err := fsmoe.Calibrate(layer, fsmoe.CalibrateConfig{
			Ranks: ranks, Tokens: cfg.tokens, Degrees: calibrateDegrees(),
		})
		if err != nil {
			return err
		}
		emitCalibrationFits(cfg, cal)
		emitCalibrationSweep(cfg, cal)
		if err := emitCalibrationPicks(cfg, ranks, layer, cal); err != nil {
			return err
		}
	}
	note("calibrated picks run Algorithm 1 on cost models fitted from this machine's measured stage times;")
	note("testbed picks run it on Testbed A's modelled constants. best-r/best-strategy are the sweep's measured optima.")
	return nil
}

// emitCalibrationFits prints the per-kind fitted cost models.
func emitCalibrationFits(cfg realpipeConfig, cal *fsmoe.Calibration) {
	tb := report.NewTable(
		fmt.Sprintf("%s M=%d H=%d E=%d N=%d: fitted cost models (plan-estimate units)",
			cfg.name, cfg.m, cfg.h, cfg.e, cfg.tokens),
		"kind", "alpha_ms", "beta_ms_per_unit", "R2", "samples")
	for _, kind := range []string{fsmoe.KindAlltoAll, fsmoe.KindAllGather, fsmoe.KindReduceScatter, fsmoe.KindExperts, fsmoe.KindAllReduce} {
		f, ok := cal.Fits[kind]
		if !ok {
			continue
		}
		tb.AddRow(kind, fmt.Sprintf("%.4f", f.Alpha), fmt.Sprintf("%.3e", f.Beta),
			fmt.Sprintf("%.4f", f.R2), f.N)
	}
	emit(tb)
}

// emitCalibrationSweep prints the measured sweep: per (strategy, degree),
// the sequential baseline, the DES prediction from measured stage times,
// and the measured pipelined pass — the SimulateWith-vs-Execute fidelity
// table.
func emitCalibrationSweep(cfg realpipeConfig, cal *fsmoe.Calibration) {
	tb := report.NewTable(
		fmt.Sprintf("%s: calibration sweep, one fwd+bwd pass, ms", cfg.name),
		"strategy", "r", "sequential", "predicted-pipe", "measured-pipe")
	for _, p := range cal.Points {
		tb.AddRow(stratCell(p.Strategy, p.GroupSize), p.Degree,
			fmt.Sprintf("%.1f", p.SeqMS), fmt.Sprintf("%.1f", p.PredMS), fmt.Sprintf("%.1f", p.PipeMS))
	}
	emit(tb)
}

// sweepTimeAt returns the measured pipelined time of a sweep cell, or 0
// when the degree was outside the grid. Hybrid cells additionally match
// on the group size (g is ignored for the other strategies).
func sweepTimeAt(cal *fsmoe.Calibration, strat fsmoe.Strategy, g, degree int) float64 {
	for _, p := range cal.Points {
		if p.Strategy == strat && p.Degree == degree &&
			(strat != fsmoe.StrategyHybrid || p.GroupSize == g) {
			return p.PipeMS
		}
	}
	return 0
}

// sweepWorst returns the worst measured pipelined time for a strategy.
func sweepWorst(cal *fsmoe.Calibration, strat fsmoe.Strategy) float64 {
	worst := 0.0
	for _, p := range cal.Points {
		if p.Strategy == strat && p.PipeMS > worst {
			worst = p.PipeMS
		}
	}
	return worst
}

// emitCalibrationPicks compares testbed vs calibrated Algorithm-1 picks
// against the measured optimum, per strategy and overall.
func emitCalibrationPicks(cfg realpipeConfig, ranks int, layer *fsmoe.Layer, cal *fsmoe.Calibration) error {
	tb := report.NewTable(
		fmt.Sprintf("%s: Algorithm-1 degree picks vs the measured optimum", cfg.name),
		"strategy", "testbed r(fwd/bwd)", "calibrated r(fwd/bwd)", "best-r", "t(calibrated)/t(best)", "judged")
	for _, strat := range cal.Strategies() {
		wt, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{
			Ranks: ranks, Strategy: strat, BatchTokens: cfg.tokens,
		})
		if err != nil {
			return err
		}
		tf, tbw := wt.PipelineDegrees()
		wt.Close()
		wc, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{
			Ranks: ranks, Strategy: strat, BatchTokens: cfg.tokens, Calibration: cal,
		})
		if err != nil {
			return err
		}
		cf, cb := wc.PipelineDegrees()
		calG := wc.GroupSize()
		wc.Close()
		bestR, bestT := cal.MeasuredBest(strat)
		ratio := "n/a (off grid)"
		if t := sweepTimeAt(cal, strat, calG, cf); t > 0 && bestT > 0 {
			ratio = fmt.Sprintf("%.2f", t/bestT)
		}
		judged := "no (gap <5%)"
		if worst := sweepWorst(cal, strat); bestT > 0 && worst/bestT-1 >= calibrateMatchTolerance {
			judged = "yes"
		}
		tb.AddRow(stratCell(strat, calG),
			fmt.Sprintf("%d/%d", tf, tbw), fmt.Sprintf("%d/%d", cf, cb),
			bestR, ratio, judged)
	}
	emit(tb)

	// Overall strategy pick: StrategyAuto with and without the calibration
	// vs the measured best strategy.
	wt, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{Ranks: ranks, BatchTokens: cfg.tokens})
	if err != nil {
		return err
	}
	testbedPick := wt.Strategy()
	wt.Close()
	wc, err := fsmoe.NewWorld(layer, fsmoe.WorldConfig{Ranks: ranks, BatchTokens: cfg.tokens, Calibration: cal})
	if err != nil {
		return err
	}
	calPick := wc.Strategy()
	wc.Close()
	bestStrat, bestR, bestT := cal.MeasuredBestStrategy()
	gap := 0.0
	for _, s := range cal.Strategies() {
		if _, t := cal.MeasuredBest(s); t > 0 && bestT > 0 && t/bestT-1 > gap {
			gap = t/bestT - 1
		}
	}
	verdict := "gap <5%: either strategy is fine"
	if gap >= calibrateMatchTolerance {
		if calPick == bestStrat {
			verdict = "calibrated pick MATCHES the measured best"
		} else {
			verdict = "calibrated pick MISSES the measured best"
		}
	}
	note("%s: strategy pick — testbed-auto=%s calibrated-auto=%s measured-best=%s (r=%d, %.1f ms, gap %.0f%%): %s",
		cfg.name, testbedPick, calPick, bestStrat, bestR, bestT, 100*gap, verdict)
	return nil
}
